"""Analytic hit-rate predictors: the simulator's third oracle.

The audit gate already cross-checks two *implementations* against each
other (reference engine vs. columnar fast engine, production caches vs.
oracle twins).  This module adds a cross-check against *theory*: closed-form
hit-rate approximations that share no code with the simulator, derived from
the cache-optimization survey's Che/TTL-approximation framework (arXiv
1912.12339) and the random-replacement networks-of-caches analysis (arXiv
1202.4880).

Model
-----
Treat the request stream reaching one cache as an independent reference
model (IRM): object ``i`` is drawn with probability ``p_i = c_i / n``
estimated from its request count in the actual trace.  Both predictors
reduce to one *characteristic time* ``T`` (measured in requests) fixed by
the byte-capacity constraint::

    sum_i  s_i * occ(p_i * T)  =  C        (expected resident bytes = C)

with a per-policy occupancy function, which by PASTA is also the
stationary per-access hit probability:

* **LRU (Che approximation)** -- ``occ(x) = 1 - exp(-x)``: object ``i`` is
  resident iff referenced within the last ``T`` requests.
* **Random (exact TTL-style formula)** -- ``occ(x) = x / (1 + x)``: under
  uniform-random eviction each resident object survives an exponential
  lifetime with mean ``T``, independent of popularity; the formula is the
  stationary solution of that birth-death process (exact in the
  large-cache limit, not just an approximation).

LFU has no comparably clean closed form (its stationary point depends on
the whole frequency histogram's evolution), so the analytic oracle covers
``lru`` and ``random``; LFU is validated by the policy conformance suite
and the engine-parity matrix instead.

Finite traces add a cold-start transient the stationary formulas do not
model, so predictions and measurements are both expressed over *warm*
accesses only (requests whose object was seen before at that cache):
``warm_hit_rate = sum_i (c_i - 1) * occ_i / sum_i (c_i - 1)``.

Tolerance
---------
:data:`PREDICTOR_TOLERANCE` (absolute, on the warm hit rate) is what the
audit gate enforces.  The IRM assumption is the predictor's weak joint:
the synthetic streams carry deliberate temporal locality (client
working-set repeats), and measured in request order the gap reaches ~0.2
at tight capacities -- a workload property, not a cache defect.  The
audit therefore measures on a *seeded exchangeable shuffle* of each
substream (``shuffle_seed`` in :func:`measure_l1_hit_rate`): permuting
requests makes the stream IRM by construction while leaving per-object
counts -- the predictor's only input -- untouched, so the comparison
isolates the replacement machinery, which is what the oracle exists to
check.  Under the shuffle the observed gap across the audit capacities
is <= 0.02 for both policies; 0.04 doubles that margin and still catches
real defects -- a broken victim selection (evicting MRU, a biased random
draw, leaked protection) shifts the warm hit rate by 0.1+ on these
streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cache.policy import PolicySpec

#: Absolute warm-hit-rate tolerance the audit gate enforces (derivation in
#: the module docstring).
PREDICTOR_TOLERANCE = 0.04

#: Policies the analytic model covers.
PREDICTABLE_POLICIES = ("lru", "random")


def _occupancy_lru(x: np.ndarray) -> np.ndarray:
    """Che approximation: P(referenced within the last T requests)."""
    return -np.expm1(-x)


def _occupancy_random(x: np.ndarray) -> np.ndarray:
    """Random replacement: stationary occupancy of a memoryless cache."""
    return x / (1.0 + x)


_OCCUPANCY = {"lru": _occupancy_lru, "random": _occupancy_random}


@dataclass(frozen=True)
class HitRatePrediction:
    """One cache's analytic prediction.

    Attributes:
        policy: Policy name the occupancy model was chosen for.
        capacity_bytes: Byte capacity the characteristic time satisfies
            (``None`` = unbounded: everything warm hits).
        characteristic_time: Che/TTL characteristic time ``T`` in requests
            (``inf`` when the catalog fits in the cache).
        warm_hit_rate: Predicted hit probability over warm accesses.
        warm_accesses: Number of warm accesses the prediction covers.
        distinct_objects: Distinct objects in the stream.
    """

    policy: str
    capacity_bytes: int | None
    characteristic_time: float
    warm_hit_rate: float
    warm_accesses: int
    distinct_objects: int


def characteristic_time(
    probabilities: np.ndarray,
    sizes: np.ndarray,
    capacity_bytes: int,
    policy: str = "lru",
) -> float:
    """Solve the capacity constraint for the characteristic time ``T``.

    ``sum(sizes * occ(probabilities * T))`` is continuous and strictly
    increasing in ``T``, so plain bisection converges; the bracket doubles
    until it straddles the capacity.  Returns ``inf`` when every object
    fits simultaneously (the constraint has no finite root).
    """
    occupancy = _OCCUPANCY[policy]
    probabilities = np.asarray(probabilities, dtype=np.float64)
    sizes = np.asarray(sizes, dtype=np.float64)
    if float(sizes.sum()) <= capacity_bytes:
        return math.inf

    def resident_bytes(t: float) -> float:
        return float((sizes * occupancy(probabilities * t)).sum())

    low, high = 0.0, 1.0
    while resident_bytes(high) < capacity_bytes:
        high *= 2.0
        if high > 1e18:  # pragma: no cover - unreachable given the guard
            return math.inf
    for _ in range(80):
        mid = 0.5 * (low + high)
        if resident_bytes(mid) < capacity_bytes:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def predict_hit_rate(
    counts: np.ndarray,
    sizes: np.ndarray,
    capacity_bytes: int | None,
    policy: str = "lru",
) -> HitRatePrediction:
    """Predict one cache's warm hit rate from per-object statistics.

    Args:
        counts: Per-object request counts in the stream this cache sees.
        sizes: Per-object sizes in bytes (parallel to ``counts``).
        capacity_bytes: Cache capacity (``None`` = unbounded).
        policy: ``lru`` (Che) or ``random`` (exact TTL-style).
    """
    if policy not in _OCCUPANCY:
        raise ValueError(
            f"no analytic model for policy {policy!r}; "
            f"supported: {PREDICTABLE_POLICIES}"
        )
    counts = np.asarray(counts, dtype=np.float64)
    sizes = np.asarray(sizes, dtype=np.float64)
    if counts.shape != sizes.shape:
        raise ValueError("counts and sizes must be parallel arrays")
    total = float(counts.sum())
    warm = counts - 1.0
    warm_total = float(warm.sum())
    if total == 0.0 or warm_total == 0.0:
        return HitRatePrediction(
            policy, capacity_bytes, math.inf, 1.0, 0, int(len(counts))
        )
    probabilities = counts / total
    if capacity_bytes is None:
        t = math.inf
        hit_prob = np.ones_like(probabilities)
    else:
        t = characteristic_time(probabilities, sizes, capacity_bytes, policy)
        if math.isinf(t):
            hit_prob = np.ones_like(probabilities)
        else:
            hit_prob = _OCCUPANCY[policy](probabilities * t)
    return HitRatePrediction(
        policy=policy,
        capacity_bytes=capacity_bytes,
        characteristic_time=t,
        warm_hit_rate=float((warm * hit_prob).sum() / warm_total),
        warm_accesses=int(round(warm_total)),
        distinct_objects=int(len(counts)),
    )


# ----------------------------------------------------------------------
# per-level streams: predict and measure the L1 tier of a topology
# ----------------------------------------------------------------------
def _l1_streams(trace, topology):
    """Yield ``(node, object_ids, sizes)`` per L1 proxy, cachable only.

    The stream one L1 cache sees is the trace filtered to its client
    group's cacheable, non-error requests -- exactly what the simulation
    engines let reach the data caches.
    """
    columns = trace.columns()
    keep = np.asarray(columns.cacheable) & ~np.asarray(columns.error)
    nodes = topology.l1_of_clients(columns.client[keep])
    objects = columns.object[keep]
    sizes = columns.size[keep]
    for node in range(topology.n_l1):
        rows = nodes == node
        if rows.any():
            yield node, objects[rows], sizes[rows]


def _per_object(objects: np.ndarray, sizes: np.ndarray):
    """Per-object request counts and (fixed) sizes for one stream."""
    unique, first, counts = np.unique(
        objects, return_index=True, return_counts=True
    )
    return counts, sizes[first], unique


def predict_l1_hit_rate(
    trace, topology, capacity_bytes: int | None, policy: str = "lru"
) -> HitRatePrediction:
    """Aggregate analytic prediction for the L1 tier of ``topology``.

    Each proxy's prediction runs on its own routed substream (the Zipf
    popularity thins uniformly across client groups, so per-node and
    aggregate skew agree); warm hits and warm accesses then sum across
    nodes into one tier-level rate, mirroring how the measured rate
    aggregates.
    """
    warm_hits = 0.0
    warm_accesses = 0
    distinct = 0
    t_values = []
    for _node, objects, sizes in _l1_streams(trace, topology):
        counts, object_sizes, unique = _per_object(objects, sizes)
        prediction = predict_hit_rate(counts, object_sizes, capacity_bytes, policy)
        warm_hits += prediction.warm_hit_rate * prediction.warm_accesses
        warm_accesses += prediction.warm_accesses
        distinct += len(unique)
        t_values.append(prediction.characteristic_time)
    rate = warm_hits / warm_accesses if warm_accesses else 1.0
    return HitRatePrediction(
        policy=policy,
        capacity_bytes=capacity_bytes,
        characteristic_time=float(np.mean(t_values)) if t_values else math.inf,
        warm_hit_rate=rate,
        warm_accesses=warm_accesses,
        distinct_objects=distinct,
    )


@dataclass(frozen=True)
class MeasuredHitRate:
    """Warm-access hit rate measured by driving real policy caches."""

    policy: str
    capacity_bytes: int | None
    warm_hit_rate: float
    warm_accesses: int
    warm_hits: int


def measure_l1_hit_rate(
    trace,
    topology,
    capacity_bytes: int | None,
    policy: PolicySpec,
    *,
    shuffle_seed: int | None = None,
) -> MeasuredHitRate:
    """Drive the production cache classes over the same per-proxy streams.

    One cache per L1 node is built from ``policy`` (the identical
    construction the architectures use, node-salted), fed its routed
    substream, and counted over warm accesses.  Versions are held constant
    so the measurement isolates *replacement* from consistency churn --
    the same isolation the predictor's IRM model assumes.

    ``shuffle_seed`` applies a seeded permutation to each substream before
    replay, making it exchangeable (IRM by construction) -- the regime the
    analytic formulas are exact/tight in, and what the audit gate compares
    against (see the module docstring's tolerance discussion).  ``None``
    replays in trace order, which keeps the workload's temporal locality
    and so reads *above* the prediction for LRU.
    """
    from repro.cache.lru import LookupResult

    warm_accesses = 0
    warm_hits = 0
    for node, objects, sizes in _l1_streams(trace, topology):
        if shuffle_seed is not None:
            order = np.random.default_rng([shuffle_seed, node]).permutation(
                len(objects)
            )
            objects, sizes = objects[order], sizes[order]
        cache = policy.build(capacity_bytes, salt=node)
        seen: set[int] = set()
        hit = LookupResult.HIT
        for oid, size in zip(objects.tolist(), sizes.tolist()):
            if oid in seen:
                warm_accesses += 1
                if cache.lookup(oid, 0) is hit:
                    warm_hits += 1
                else:
                    cache.insert(oid, size, 0)
            else:
                seen.add(oid)
                cache.insert(oid, size, 0)
    rate = warm_hits / warm_accesses if warm_accesses else 1.0
    return MeasuredHitRate(
        policy=policy.name,
        capacity_bytes=capacity_bytes,
        warm_hit_rate=rate,
        warm_accesses=warm_accesses,
        warm_hits=warm_hits,
    )


__all__ = [
    "PREDICTOR_TOLERANCE",
    "PREDICTABLE_POLICIES",
    "HitRatePrediction",
    "MeasuredHitRate",
    "characteristic_time",
    "measure_l1_hit_rate",
    "predict_hit_rate",
    "predict_l1_hit_rate",
]
