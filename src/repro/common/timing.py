"""Small wall-clock helpers shared by the runner, CLI, and benches."""

from __future__ import annotations

import time


class Stopwatch:
    """Context-manager stopwatch over ``time.perf_counter``.

    Usable as ``with Stopwatch() as sw: ...; sw.elapsed`` or started
    implicitly at construction for straight-line timing.
    """

    def __init__(self) -> None:
        self._started = time.perf_counter()
        self._elapsed: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._started = time.perf_counter()
        self._elapsed = None
        return self

    def __exit__(self, *exc_info) -> None:
        self._elapsed = time.perf_counter() - self._started

    @property
    def elapsed(self) -> float:
        """Seconds: frozen at context exit, else live since start."""
        if self._elapsed is not None:
            return self._elapsed
        return time.perf_counter() - self._started


def format_seconds(seconds: float) -> str:
    """Compact human rendering ("0.42s", "12.3s", "2m06s")."""
    if seconds < 10:
        return f"{seconds:.2f}s"
    if seconds < 120:
        return f"{seconds:.1f}s"
    minutes, rest = divmod(seconds, 60)
    return f"{int(minutes)}m{rest:04.1f}s"
