"""MD5-derived identifiers and low-order-bit matching.

The paper's self-configuring metadata hierarchy (Section 3.1.3) assigns every
node a pseudo-random ID (the MD5 signature of the node's IP address) and
every object a pseudo-random ID (the MD5 signature of the object's URL).
The Plaxton embedding then compares IDs by the number of *low-order* bits
(or base-``2^b`` digits for ``2^b``-ary trees) in which they agree.

The prototype (Section 3.2.1) stores 8-byte hashes of URLs inside 16-byte
hint records; :func:`object_id_from_url` produces exactly that 64-bit value.
"""

from __future__ import annotations

import hashlib

#: Number of bits in an object/node identifier (8-byte hash, per the paper).
ID_BITS: int = 64
#: Mask selecting the ID_BITS low-order bits of an integer.
ID_MASK: int = (1 << ID_BITS) - 1


def _md5_low64(data: bytes) -> int:
    """Return the low-order 64 bits of the MD5 digest of ``data``.

    The paper uses "part of the MD5 signature" as its 8-byte identifiers;
    we take the first 8 digest bytes, little-endian, which is a fixed,
    deterministic choice.
    """
    digest = hashlib.md5(data).digest()
    return int.from_bytes(digest[:8], "little")


def object_id_from_url(url: str) -> int:
    """Compute the 64-bit object identifier for a URL.

    This is the hash stored in hint records and used to route hint updates
    through the Plaxton metadata hierarchy.
    """
    return _md5_low64(url.encode("utf-8"))


def node_id_from_name(name: str) -> int:
    """Compute the 64-bit node identifier for a node name / address.

    The paper hashes the node's IP address; any unique string works the same
    way in simulation.
    """
    return _md5_low64(name.encode("utf-8"))


def matching_low_bits(a: int, b: int, max_bits: int = ID_BITS) -> int:
    """Count how many low-order bits of ``a`` and ``b`` agree.

    This is the similarity measure at the heart of the Plaxton embedding:
    the root of an object's virtual tree is the node whose ID matches the
    object's ID in the most low-order bits.

    >>> matching_low_bits(0b1011, 0b0011)
    3
    >>> matching_low_bits(0b1010, 0b1011)
    0
    """
    diff = (a ^ b) & ((1 << max_bits) - 1)
    if diff == 0:
        return max_bits
    # Number of trailing zero bits of the XOR = number of matching low bits.
    return (diff & -diff).bit_length() - 1


def matching_low_digits(a: int, b: int, bits_per_digit: int, max_bits: int = ID_BITS) -> int:
    """Count matching low-order base-``2**bits_per_digit`` digits of two IDs.

    For flatter, ``2**bits_per_digit``-ary hierarchies the paper matches
    ``log2(k)`` bits at a time; this returns how many whole digits agree.
    """
    if bits_per_digit <= 0:
        raise ValueError(f"bits_per_digit must be positive, got {bits_per_digit}")
    return matching_low_bits(a, b, max_bits) // bits_per_digit


def low_digit(value: int, index: int, bits_per_digit: int) -> int:
    """Extract the ``index``-th low-order base-``2**bits_per_digit`` digit.

    Digit 0 is the least significant.  Used when choosing which parent to
    forward a hint update to: at level ``i`` the update goes to the parent
    whose ``(i+1)``-th digit matches the object ID's ``(i+1)``-th digit.
    """
    return (value >> (index * bits_per_digit)) & ((1 << bits_per_digit) - 1)


# ---------------------------------------------------------------------------
# Stable partition hashing (sharded runs)
# ---------------------------------------------------------------------------
# The sharded runner partitions the object space by hash.  Python's builtin
# ``hash`` is randomized per process (PYTHONHASHSEED), so shard membership
# must come from an explicit mixer that every process -- coordinator and
# workers, today and in a re-run -- computes identically.  splitmix64 is the
# standard cheap 64-bit finalizer (Steele et al., the Java SplittableRandom
# mixer): bijective on u64, so distinct object ids never collide before the
# final modulo.

_U64 = (1 << 64) - 1


def splitmix64(value: int) -> int:
    """The splitmix64 finalizer: a fixed, process-independent u64 mixer."""
    value = (value + 0x9E3779B97F4A7C15) & _U64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _U64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _U64
    return value ^ (value >> 31)


def mix64(*values: int) -> int:
    """Fold several integers into one stable 64-bit value.

    Used to derive per-partition RNG seeds from stable identity (base
    seed, partition index) -- never from enumeration order.
    """
    state = 0
    for value in values:
        state = splitmix64((state ^ (value & _U64)) & _U64)
    return state


def partition_of_object(object_id: int, n_partitions: int) -> int:
    """The virtual partition owning ``object_id`` (stable across processes)."""
    if n_partitions < 1:
        raise ValueError(f"n_partitions must be at least 1, got {n_partitions}")
    return splitmix64(object_id) % n_partitions


def partitions_of_objects(object_ids, n_partitions: int):
    """Vectorized :func:`partition_of_object` over an int64 array.

    Element-for-element identical to the scalar form (uint64 wraparound
    mirrors the ``& _U64`` masking); used to split a trace's object column
    in one pass.
    """
    import numpy as np

    if n_partitions < 1:
        raise ValueError(f"n_partitions must be at least 1, got {n_partitions}")
    value = np.asarray(object_ids).astype(np.uint64)
    with np.errstate(over="ignore"):
        value = value + np.uint64(0x9E3779B97F4A7C15)
        value = (value ^ (value >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        value = (value ^ (value >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        value = value ^ (value >> np.uint64(31))
    return (value % np.uint64(n_partitions)).astype(np.int64)
