"""Shared low-level utilities used throughout the reproduction.

This package deliberately contains only dependency-free building blocks:

* :mod:`repro.common.ids` -- MD5-derived identifiers and the bit-matching
  helpers the Plaxton tree embedding is built on.
* :mod:`repro.common.units` -- byte and time unit conversions so that
  magnitudes are always explicit at call sites.
* :mod:`repro.common.rng` -- seeded random-number-generator plumbing so every
  experiment is reproducible from a single integer seed.
* :mod:`repro.common.errors` -- the exception hierarchy for the library.
"""

from repro.common.errors import (
    ConfigurationError,
    ReproError,
    TraceFormatError,
)
from repro.common.ids import (
    matching_low_bits,
    matching_low_digits,
    node_id_from_name,
    object_id_from_url,
)
from repro.common.rng import SeedSequenceFactory, derive_seed
from repro.common.units import (
    GB,
    KB,
    MB,
    MINUTES,
    SECONDS,
    bytes_to_mb,
    mb_to_bytes,
    ms_to_seconds,
    seconds_to_ms,
)

__all__ = [
    "GB",
    "KB",
    "MB",
    "MINUTES",
    "SECONDS",
    "ConfigurationError",
    "ReproError",
    "SeedSequenceFactory",
    "TraceFormatError",
    "bytes_to_mb",
    "derive_seed",
    "matching_low_bits",
    "matching_low_digits",
    "mb_to_bytes",
    "ms_to_seconds",
    "node_id_from_name",
    "object_id_from_url",
    "seconds_to_ms",
]
