"""Seeded random-number-generator plumbing.

Every stochastic component in the library (trace generators, Plaxton node
placement, push-target selection, update jitter) takes an explicit seed or
:class:`numpy.random.Generator`.  Experiments derive all of their generators
from a single root seed via :class:`SeedSequenceFactory`, so that a whole
figure is reproducible from one integer while its components remain
statistically independent.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *labels: str | int) -> int:
    """Derive a stable 63-bit child seed from a root seed and labels.

    Hash-based derivation (rather than ``root_seed + i``) keeps child
    streams independent even for adjacent seeds, and lets components be
    labelled by meaningful names::

        seed = derive_seed(42, "trace", "dec", 3)
    """
    material = repr((root_seed, labels)).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "little") >> 1  # 63 bits, non-negative


class SeedSequenceFactory:
    """Factory for labelled, independent numpy Generators from one seed.

    >>> factory = SeedSequenceFactory(42)
    >>> rng_a = factory.generator("popularity")
    >>> rng_b = factory.generator("sizes")

    Calling :meth:`generator` twice with the same labels returns generators
    with identical streams, which makes component-level reproducibility
    testable.
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)

    def seed(self, *labels: str | int) -> int:
        """Return the derived integer seed for the given labels."""
        return derive_seed(self.root_seed, *labels)

    def generator(self, *labels: str | int) -> np.random.Generator:
        """Return a fresh :class:`numpy.random.Generator` for the labels."""
        return np.random.default_rng(self.seed(*labels))

    def __repr__(self) -> str:
        return f"SeedSequenceFactory(root_seed={self.root_seed})"
