"""Byte-size and time-unit constants and conversions.

The paper mixes units freely (16-byte hint records, 500 MB hint stores,
5 GB proxy caches, millisecond access times, minute-scale propagation
delays).  To keep call sites unambiguous, the library stores:

* sizes in **bytes** (plain ``int``),
* simulation timestamps in **seconds** (``float``),
* response times in **milliseconds** (``float``; the paper reports ms).

These helpers make the conversions explicit and grep-able.
"""

from __future__ import annotations

#: One kilobyte (paper uses binary-ish sizes: 2 KB ... 1024 KB objects).
KB: int = 1024
#: One megabyte.
MB: int = 1024 * KB
#: One gigabyte (proxy caches in the paper are 5 GB).
GB: int = 1024 * MB

#: One second expressed in seconds (for symmetry with MINUTES).
SECONDS: float = 1.0
#: One minute in seconds (hint propagation delays are given in minutes).
MINUTES: float = 60.0
#: One hour in seconds.
HOURS: float = 3600.0
#: One day in seconds (traces span days; warmup is two days).
DAYS: float = 86400.0


def mb_to_bytes(megabytes: float) -> int:
    """Convert a size in MB to an integer number of bytes."""
    return int(megabytes * MB)


def gb_to_bytes(gigabytes: float) -> int:
    """Convert a size in GB to an integer number of bytes."""
    return int(gigabytes * GB)


def bytes_to_mb(n_bytes: int) -> float:
    """Convert a byte count to megabytes."""
    return n_bytes / MB


def bytes_to_gb(n_bytes: int) -> float:
    """Convert a byte count to gigabytes."""
    return n_bytes / GB


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1000.0


def ms_to_seconds(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds / 1000.0
