"""Exception hierarchy for the reproduction library.

Every exception raised intentionally by this library derives from
:class:`ReproError` so that callers can catch library failures without
masking genuine programming errors (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An experiment, topology, or component was configured inconsistently.

    Examples: a hierarchy whose fan-outs do not cover the client population,
    a hint cache sized to zero sets, or a cost model asked about an unknown
    access path.
    """


class TraceFormatError(ReproError):
    """A trace file or trace record could not be parsed or validated."""


class TopologyError(ConfigurationError):
    """A node/tree topology operation was invalid (unknown node, empty tree)."""


class ShardRoutingError(ReproError):
    """A sharded run routed a request to a partition that does not own it.

    Raised by :meth:`repro.hierarchy.base.Architecture.check_shard_owns`:
    under object-space partitioning every peer a hint/ICP/directory lookup
    can name lives in the object's owning partition, so a foreign object
    reaching an engine means the trace split or the consistent-hash
    routing is broken -- continuing would silently violate shard-count
    invariance.
    """
