"""Machine-readable export of experiment results.

Downstream users plot with their own stack; these helpers dump any
:class:`~repro.experiments.base.ExperimentResult` as JSON (one document,
rows + claims + notes) or CSV (rows only), and load the JSON back for
later comparison runs.
"""

from __future__ import annotations

import csv
import io
import json
import os
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.experiments.base import ExperimentResult


def result_to_json(result: "ExperimentResult") -> str:
    """Serialize a result (rows, claims, notes, chart spec) to JSON."""
    return json.dumps(
        {
            "experiment": result.experiment,
            "description": result.description,
            "rows": result.rows,
            "paper_claims": result.paper_claims,
            "notes": result.notes,
            "chart_spec": result.chart_spec,
        },
        indent=2,
        default=str,
    )


def result_from_json(text: str) -> "ExperimentResult":
    """Load a result previously dumped by :func:`result_to_json`."""
    from repro.experiments.base import ExperimentResult

    data = json.loads(text)
    return ExperimentResult(
        experiment=data["experiment"],
        description=data["description"],
        rows=data.get("rows", []),
        paper_claims=data.get("paper_claims", {}),
        notes=data.get("notes", []),
        chart_spec=data.get("chart_spec"),
    )


def result_to_csv(result: "ExperimentResult") -> str:
    """Serialize a result's rows as CSV (columns = union of row keys)."""
    columns: list[str] = []
    for row in result.rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, extrasaction="ignore")
    writer.writeheader()
    for row in result.rows:
        writer.writerow(row)
    return buffer.getvalue()


def save_result(result: "ExperimentResult", path: str | os.PathLike) -> None:
    """Write a result to ``path``: ``.json`` or ``.csv`` by extension."""
    path = os.fspath(path)
    if path.endswith(".json"):
        payload = result_to_json(result)
    elif path.endswith(".csv"):
        payload = result_to_csv(result)
    else:
        raise ValueError(f"unsupported export extension for {path!r}")
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(payload)


def load_result(path: str | os.PathLike) -> "ExperimentResult":
    """Read a JSON result written by :func:`save_result`."""
    path = os.fspath(path)
    if not path.endswith(".json"):
        raise ValueError("only JSON results can be loaded back")
    with open(path, "r", encoding="utf-8") as stream:
        return result_from_json(stream.read())
