"""ASCII table / series formatting for experiment output.

Experiments return structured rows; these helpers render them the way the
benchmark harness prints them, so the regenerated tables can be compared
line-by-line with the paper.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    title: str | None = None,
    columns: Sequence[str] | None = None,
) -> str:
    """Render rows of dicts as an aligned ASCII table.

    Args:
        rows: Result rows; all keys of the first row are used unless
            ``columns`` restricts/orders them.
        title: Optional heading printed above the table.
        columns: Explicit column order.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns:
        cols = list(columns)
    else:
        # Union of all rows' keys, ordered by first appearance, so rows
        # with heterogeneous keys (e.g. combined ablation studies) render.
        cols = []
        for row in rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
    rendered = [[_cell(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)


def format_series(
    points: Sequence[tuple[object, object]],
    *,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render an (x, y) series as a two-column table."""
    rows = [{x_label: x, y_label: y} for x, y in points]
    return format_table(rows, title=title, columns=[x_label, y_label])


#: Column order for the latency-decomposition table: the step kinds in the
#: order a request experiences them (see repro.obs.journey's semantics).
DECOMPOSITION_KINDS = (
    "local_lookup",
    "hint_lookup",
    "peer_probe",
    "level_traversal",
    "timeout",
    "transfer",
    "origin_fetch",
)


def decomposition_rows(metrics_by_arch: Mapping[str, object]) -> list[dict]:
    """Latency-decomposition rows: mean ms/request charged per step kind.

    Args:
        metrics_by_arch: Architecture name -> :class:`repro.sim.metrics.
            SimMetrics` (``run_comparison``'s return shape).

    Each row decomposes an architecture's mean response time into the
    step kinds its journeys charged -- the per-kind columns sum to
    ``mean_ms`` (up to float rounding), which makes the table an audit of
    the paper's hop argument: *where* the hierarchy loses its
    milliseconds, and where hints spend theirs.  The mean is joined by
    the tail (p50/p95/p99 from the run's latency histogram) so a flat
    mean hiding a fat tail is visible in the same row.
    """
    rows = []
    for name, metrics in metrics_by_arch.items():
        measured = metrics.measured_requests
        row: dict[str, object] = {"architecture": name}
        for kind in DECOMPOSITION_KINDS:
            aggregate = metrics.steps.get(kind)
            total = aggregate.total_ms if aggregate is not None else 0.0
            row[kind] = total / measured if measured else 0.0
        row["mean_ms"] = metrics.mean_response_ms
        row["p50_ms"] = metrics.percentile_ms(0.50)
        row["p95_ms"] = metrics.percentile_ms(0.95)
        row["p99_ms"] = metrics.percentile_ms(0.99)
        if metrics.degraded.fault_added_ms:
            row["fault_ms"] = (
                metrics.degraded.fault_added_ms / measured if measured else 0.0
            )
        rows.append(row)
    return rows


def format_decomposition_table(
    metrics_by_arch: Mapping[str, object], *, title: str = "latency decomposition"
) -> str:
    """Render per-architecture mean-ms-per-request by journey step kind."""
    return format_table(decomposition_rows(metrics_by_arch), title=title)


def comparison_rows(metrics_by_arch: Mapping[str, object]) -> list[dict]:
    """One summary row per architecture: mean, tail percentiles, ratios.

    The shape ``run_comparison`` callers render: each row is the
    architecture name plus :meth:`repro.sim.metrics.SimMetrics.summary`
    (which includes the p50/p95/p99 response-time percentiles from the
    latency histogram that is collected on every run).
    """
    return [
        {"architecture": name, **metrics.summary()}
        for name, metrics in metrics_by_arch.items()
    ]


def format_comparison_table(
    metrics_by_arch: Mapping[str, object], *, title: str = "architecture comparison"
) -> str:
    """Render the per-architecture summary table (mean + tail + ratios)."""
    return format_table(comparison_rows(metrics_by_arch), title=title)
