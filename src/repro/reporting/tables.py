"""ASCII table / series formatting for experiment output.

Experiments return structured rows; these helpers render them the way the
benchmark harness prints them, so the regenerated tables can be compared
line-by-line with the paper.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    title: str | None = None,
    columns: Sequence[str] | None = None,
) -> str:
    """Render rows of dicts as an aligned ASCII table.

    Args:
        rows: Result rows; all keys of the first row are used unless
            ``columns`` restricts/orders them.
        title: Optional heading printed above the table.
        columns: Explicit column order.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns:
        cols = list(columns)
    else:
        # Union of all rows' keys, ordered by first appearance, so rows
        # with heterogeneous keys (e.g. combined ablation studies) render.
        cols = []
        for row in rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
    rendered = [[_cell(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)


def format_series(
    points: Sequence[tuple[object, object]],
    *,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render an (x, y) series as a two-column table."""
    rows = [{x_label: x, y_label: y} for x, y in points]
    return format_table(rows, title=title, columns=[x_label, y_label])
