"""Terminal-friendly ASCII charts for experiment series.

The figure experiments produce (x, y) series; these helpers render them as
scatter/line charts (optionally log-x, matching the paper's log axes in
Figures 1, 5 and 6) and horizontal bar charts (Figures 8 and 10) without
any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

#: Glyphs assigned to successive series in a multi-series chart.
_SERIES_GLYPHS = "ox+*#@%&"


def _scale(value: float, low: float, high: float, steps: int, log: bool) -> int:
    """Map ``value`` into ``0..steps-1`` on a linear or log axis."""
    if log:
        if value <= 0 or low <= 0:
            raise ValueError("log axes need positive values")
        value, low, high = math.log10(value), math.log10(low), math.log10(high)
    if high == low:
        return 0
    fraction = (value - low) / (high - low)
    return min(steps - 1, max(0, round(fraction * (steps - 1))))


def render_series(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    title: str | None = None,
    width: int = 60,
    height: int = 16,
    log_x: bool = False,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more (x, y) series as an ASCII scatter chart.

    Args:
        series: Mapping from series name to its points.
        title: Optional heading.
        width, height: Plot area in characters.
        log_x: Use a log10 x-axis (the paper's Figures 5/6 shape).
        x_label, y_label: Axis captions.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return (title + "\n" if title else "") + "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        glyph = _SERIES_GLYPHS[index % len(_SERIES_GLYPHS)]
        for x, y in pts:
            column = _scale(x, x_low, x_high, width, log_x)
            row = height - 1 - _scale(y, y_low, y_high, height, False)
            grid[row][column] = glyph

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (top={y_high:g}, bottom={y_low:g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    axis_kind = "log " if log_x else ""
    lines.append(f" {axis_kind}{x_label}: {x_low:g} .. {x_high:g}")
    legend = "  ".join(
        f"{_SERIES_GLYPHS[i % len(_SERIES_GLYPHS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(" " + legend)
    return "\n".join(lines)


def render_bars(
    values: Mapping[str, float],
    *,
    title: str | None = None,
    width: int = 50,
    unit: str = "",
) -> str:
    """Render labelled values as a horizontal ASCII bar chart."""
    if not values:
        return (title + "\n" if title else "") + "(no data)"
    peak = max(values.values())
    label_width = max(len(name) for name in values)
    lines: list[str] = []
    if title:
        lines.append(title)
    for name, value in values.items():
        length = 0 if peak <= 0 else round(width * value / peak)
        bar = "#" * max(length, 1 if value > 0 else 0)
        lines.append(f"{name.ljust(label_width)}  {bar} {value:g}{unit}")
    return "\n".join(lines)
