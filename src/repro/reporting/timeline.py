"""Charts over telemetry timeline rows (hit rate and occupancy vs time).

Bridges :class:`repro.obs.telemetry.Timeline` output to the ASCII chart
helpers in :mod:`repro.reporting.charts`: per-bin counter deltas become
per-bin hit-rate points, occupancy gauges become byte curves, one series
per architecture.  The x-axis is simulated time in hours -- the axis the
paper's warmup argument (section 2.2) lives on.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.obs.telemetry import parse_metric_key
from repro.reporting.charts import render_series


def hit_rate_series(
    rows: Sequence[Mapping], *, window: str | None = None
) -> dict[str, list[tuple[float, float]]]:
    """Per-bin hit rate by architecture: ``{arch: [(t_end_hours, rate)]}``.

    A bin's hit rate is the fraction of its requests satisfied by any
    cache (point != SERVER), computed from the ``repro_requests_total``
    deltas.  ``window`` restricts to ``"warmup"`` or ``"measured"``
    requests; the default counts both (the warmup ramp is usually the
    interesting part).  Empty bins contribute no point.
    """
    series: dict[str, list[tuple[float, float]]] = {}
    for row in rows:
        requests = 0.0
        hits = 0.0
        for key, delta in row.get("counters", {}).items():
            if not key.startswith("repro_requests_total"):
                continue
            _name, labels = parse_metric_key(key)
            if window is not None and labels.get("window") != window:
                continue
            requests += delta
            if labels.get("point") != "SERVER":
                hits += delta
        if requests > 0:
            arch = str(row.get("arch", ""))
            series.setdefault(arch, []).append(
                (float(row["t_end"]) / 3600.0, hits / requests)
            )
    return series


def occupancy_series(
    rows: Sequence[Mapping], *, level: str | None = None
) -> dict[str, list[tuple[float, float]]]:
    """Cache occupancy by architecture: ``{arch: [(t_end_hours, bytes)]}``.

    Sums the ``repro_cache_occupancy_bytes`` gauges across nodes at each
    bin edge; ``level`` restricts to one cache level (``"l1"``/``"l2"``/
    ``"l3"``), the default sums the whole architecture.
    """
    series: dict[str, list[tuple[float, float]]] = {}
    for row in rows:
        total = 0.0
        seen = False
        for key, value in row.get("gauges", {}).items():
            if not key.startswith("repro_cache_occupancy_bytes"):
                continue
            _name, labels = parse_metric_key(key)
            if level is not None and labels.get("level") != level:
                continue
            total += value
            seen = True
        if seen:
            arch = str(row.get("arch", ""))
            series.setdefault(arch, []).append((float(row["t_end"]) / 3600.0, total))
    return series


def render_hit_rate_chart(
    rows: Sequence[Mapping],
    *,
    window: str | None = None,
    title: str = "hit rate vs simulated time",
) -> str:
    """ASCII chart of per-bin hit rate over simulated hours."""
    return render_series(
        hit_rate_series(rows, window=window),
        title=title,
        x_label="t (h)",
        y_label="hit rate",
    )


def render_occupancy_chart(
    rows: Sequence[Mapping],
    *,
    level: str | None = None,
    title: str = "cache occupancy vs simulated time",
) -> str:
    """ASCII chart of summed cache occupancy bytes over simulated hours."""
    suffix = f" ({level})" if level else ""
    return render_series(
        occupancy_series(rows, level=level),
        title=title + suffix,
        x_label="t (h)",
        y_label="bytes",
    )
