"""Rendering and export of experiment results (tables, charts, JSON/CSV)."""

from repro.reporting.charts import render_bars, render_series
from repro.reporting.export import (
    load_result,
    result_from_json,
    result_to_csv,
    result_to_json,
    save_result,
)
from repro.reporting.tables import format_series, format_table

__all__ = [
    "format_series",
    "format_table",
    "load_result",
    "render_bars",
    "render_series",
    "result_from_json",
    "result_to_csv",
    "result_to_json",
    "save_result",
]
