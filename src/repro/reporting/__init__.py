"""Rendering and export of experiment results (tables, charts, JSON/CSV)."""

from repro.reporting.charts import render_bars, render_series
from repro.reporting.export import (
    load_result,
    result_from_json,
    result_to_csv,
    result_to_json,
    save_result,
)
from repro.reporting.tables import (
    comparison_rows,
    format_comparison_table,
    format_series,
    format_table,
)
from repro.reporting.timeline import (
    hit_rate_series,
    occupancy_series,
    render_hit_rate_chart,
    render_occupancy_chart,
)

__all__ = [
    "comparison_rows",
    "format_comparison_table",
    "format_series",
    "format_table",
    "hit_rate_series",
    "load_result",
    "occupancy_series",
    "render_bars",
    "render_hit_rate_chart",
    "render_occupancy_chart",
    "render_series",
    "result_from_json",
    "result_to_csv",
    "result_to_json",
    "save_result",
]
