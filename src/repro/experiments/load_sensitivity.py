"""Load sensitivity: does hop reduction matter more when caches are busy?

The paper measured an idle testbed and hypothesized (section 2.1.1) that
"busy nodes would probably increase the importance of reducing the number
of hops in a cache system."  This experiment tests the hypothesis: sweep a
system load factor through a queueing-inflated cost model and compare the
traditional hierarchy (many hops through increasingly saturated high-level
caches) against the hint architecture (at most one cache-to-cache hop).

Expected shape: the hint speedup grows monotonically with load.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_config, trace_for
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.netmodel.queueing import LoadAwareCostModel
from repro.netmodel.testbed import TestbedCostModel
from repro.sim.config import ExperimentConfig
from repro.sim.engine import run_simulation

#: Root-cache utilizations swept (0 = the paper's idle testbed).
LOAD_FACTORS = (0.0, 0.3, 0.5, 0.7, 0.85, 0.95)


def run(
    config: ExperimentConfig | None = None, profile_name: str = "dec"
) -> ExperimentResult:
    """Sweep system load and report both architectures' response times."""
    config = resolve_config(config)
    trace = trace_for(config, profile_name)
    rows = []
    for load in LOAD_FACTORS:
        cost = LoadAwareCostModel(TestbedCostModel(), load=load)
        base = run_simulation(trace, DataHierarchy(config.topology, cost))
        ours = run_simulation(trace, HintHierarchy(config.topology, cost))
        rows.append(
            {
                "load": load,
                "hierarchy_ms": base.mean_response_ms,
                "hints_ms": ours.mean_response_ms,
                "speedup": base.mean_response_ms / ours.mean_response_ms,
            }
        )
    return ExperimentResult(
        experiment="load_sensitivity",
        description="hint speedup vs cache-system load (the 2.1.1 hypothesis)",
        rows=rows,
        chart_spec={"kind": "xy", "x": "load", "y": ["speedup"]},
        paper_claims={
            "hypothesis": "busy nodes increase the importance of reducing "
            "the number of hops (section 2.1.1, untested in the paper)",
        },
        notes=[
            "Cache service time is inflated by the M/M/1 sojourn factor per "
            "traversed level; higher levels carry higher utilization.",
        ],
    )
