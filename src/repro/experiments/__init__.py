"""Reproductions of every table and figure in the paper's evaluation.

Each module regenerates one artifact:

========================  ====================================================
``figure1``               Testbed access times vs object size (3 panels)
``table3``                Squid hierarchy min/max access-time composition
``table4``                Trace characteristics
``figure2``               Miss-class breakdown vs global cache size
``figure3``               Hit ratios by hierarchy level (sharing)
``figure5``               Hit rate vs hint-cache size
``figure6``               Hit rate vs hint propagation delay
``table5``                Root update load: centralized vs hierarchy
``figure8``               Response times: hierarchy / directory / hints
``table6``                Speedup of hints over the hierarchy
``figure10``              Response times under push algorithms
``figure11``              Push efficiency and bandwidth
``client_hints``          Proxy-hint vs client-hint configuration (sec. 3.3)
``ablations``             ICP baseline, fan-out sweep, tree branching sweep
========================  ====================================================

Run them from the command line::

    python -m repro.experiments --list
    python -m repro.experiments figure8 table6
    python -m repro.experiments --all --scale 0.002
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import all_experiments, get_experiment

__all__ = ["ExperimentResult", "all_experiments", "get_experiment"]
