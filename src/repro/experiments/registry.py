"""Registry mapping experiment names to their ``run`` callables."""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    ablations,
    client_hints,
    failure_sensitivity,
    figure1,
    figure2,
    figure3,
    figure5,
    figure6,
    figure8,
    figure10,
    figure11,
    load_sensitivity,
    message_level,
    queueing_validation,
    scaling,
    seed_sensitivity,
    table3,
    table4,
    table5,
    table6,
)
from repro.experiments.base import ExperimentResult
from repro.sim.config import ExperimentConfig

_REGISTRY: dict[str, Callable[[ExperimentConfig | None], ExperimentResult]] = {
    "figure1": figure1.run,
    "table3": table3.run,
    "table4": table4.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "table5": table5.run,
    "figure8": figure8.run,
    "table6": table6.run,
    "figure10": figure10.run,
    "figure11": figure11.run,
    "client_hints": client_hints.run,
    "message_level": message_level.run,
    "load_sensitivity": load_sensitivity.run,
    "failure_sensitivity": failure_sensitivity.run,
    "queueing_validation": queueing_validation.run,
    "seed_sensitivity": seed_sensitivity.run,
    "scaling": scaling.run,
    "ablations": ablations.run,
}


def all_experiments() -> list[str]:
    """Registered experiment names, in the paper's presentation order."""
    return list(_REGISTRY)


def get_experiment(name: str) -> Callable[[ExperimentConfig | None], ExperimentResult]:
    """Look up one experiment's ``run`` callable."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None
