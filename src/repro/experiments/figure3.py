"""Figure 3: hit ratios by hierarchy level with infinite caches (sharing).

An infinite three-level data hierarchy is driven by each trace; the bars
are the *cumulative* hit rate available within L1, within L2 (L1+L2), and
within L3 (everything), per-request and per-byte.  More sharing -> higher
achievable hit rate: the paper reports DEC improving from ~50% at L1 to
~62% at L2 and ~78% at L3.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_config, trace_for
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.netmodel.model import AccessPoint
from repro.netmodel.testbed import TestbedCostModel
from repro.sim.config import ExperimentConfig
from repro.sim.engine import run_simulation
from repro.traces.profiles import all_profiles


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Measure cumulative hit ratios at each level for every trace."""
    config = resolve_config(config)
    rows = []
    for profile in all_profiles():
        trace = trace_for(config, profile.name)
        architecture = DataHierarchy(config.topology, TestbedCostModel())
        metrics = run_simulation(trace, architecture)
        rows.append(
            {
                "trace": profile.name,
                "l1_hit_ratio": metrics.cumulative_hit_ratio_through(AccessPoint.L1),
                "l2_hit_ratio": metrics.cumulative_hit_ratio_through(AccessPoint.L2),
                "l3_hit_ratio": metrics.cumulative_hit_ratio_through(AccessPoint.L3),
                "l1_byte_hit": metrics.cumulative_byte_hit_ratio_through(AccessPoint.L1),
                "l2_byte_hit": metrics.cumulative_byte_hit_ratio_through(AccessPoint.L2),
                "l3_byte_hit": metrics.cumulative_byte_hit_ratio_through(AccessPoint.L3),
            }
        )
    return ExperimentResult(
        experiment="figure3",
        description="cumulative hit ratio by hierarchy level, infinite caches",
        rows=rows,
        paper_claims={
            "DEC": "hit rates improve from 50% (L1) to 62% (L2) to 78% (L3)",
            "shape": "hit ratio strictly increases with sharing on every trace",
        },
        notes=[
            "Client groups are scaled (fewer clients per L1 than 256), so "
            "absolute hit levels are lower; the monotone sharing gain is the "
            "reproduced claim.",
        ],
    )
