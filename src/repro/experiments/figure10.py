"""Figure 10: simulated response time under push algorithms (DEC trace).

Six systems over the space-constrained configuration (the paper pushes
into finite caches so speculative replicas can displace useful data):

* ``hierarchy``       -- no-push data hierarchy (base case 1);
* ``hints``           -- no-push hint hierarchy (base case 2);
* ``hints+update-push``
* ``hints+push-1``    -- one copy per eligible subtree;
* ``hints+push-half`` -- half the nodes of each eligible subtree;
* ``hints+push-all``  -- every node of each eligible subtree;
* ``hints-ideal-push``-- the upper bound: all L2/L3 hits become L1 hits,
  replicas free of charge.

Paper shape claims: ideal push gains 1.21-1.62x over no-push hints;
hierarchical push gains 1.12-1.25x; update push gains essentially nothing
on response time (but is the most efficient pusher -- Figure 11).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_config, trace_for
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.netmodel import cost_model_by_name
from repro.push.base import PushPolicy
from repro.push.hierarchical import HierarchicalPushOnMiss
from repro.push.update_push import UpdatePush
from repro.sim.config import ExperimentConfig
from repro.sim.engine import run_simulation
from repro.sim.metrics import SimMetrics

COST_MODELS = ("testbed", "min", "max")
PUSH_MODES = ("push-1", "push-half", "push-all")


def _policies(config: ExperimentConfig) -> list[PushPolicy | None]:
    policies: list[PushPolicy | None] = [None, UpdatePush()]
    policies.extend(
        HierarchicalPushOnMiss(config.topology, mode, seed=config.seed)
        for mode in PUSH_MODES
    )
    return policies


def run_systems(
    config: ExperimentConfig, profile_name: str, cost_name: str
) -> dict[str, tuple[SimMetrics, HintHierarchy | None]]:
    """Run every Figure 10 system for one cost model; keyed by system name."""
    trace = trace_for(config, profile_name)
    cost = cost_model_by_name(cost_name)
    results: dict[str, tuple[SimMetrics, HintHierarchy | None]] = {}

    hierarchy = DataHierarchy(
        config.topology, cost,
        l1_bytes=config.l1_cache_bytes,
        l2_bytes=config.l1_cache_bytes,
        l3_bytes=config.l1_cache_bytes,
    )
    results["hierarchy"] = (run_simulation(trace, hierarchy), None)

    for policy in _policies(config):
        arch = HintHierarchy(
            config.topology, cost,
            l1_bytes=config.hint_data_cache_bytes,
            hint_capacity_bytes=config.hint_store_bytes,
            push_policy=policy,
        )
        results[arch.name] = (run_simulation(trace, arch), arch)

    ideal = HintHierarchy(
        config.topology, cost,
        l1_bytes=config.l1_cache_bytes,  # best case: replicas are free
        hint_capacity_bytes=None,
        charge_remote_as_l1=True,
    )
    results[ideal.name] = (run_simulation(trace, ideal), ideal)
    return results


def run(
    config: ExperimentConfig | None = None, profile_name: str = "dec"
) -> ExperimentResult:
    """Run the push-algorithm comparison for each cost model."""
    config = resolve_config(config)
    rows = []
    for cost_name in COST_MODELS:
        systems = run_systems(config, profile_name, cost_name)
        hierarchy_ms = systems["hierarchy"][0].mean_response_ms
        hints_ms = systems["hints"][0].mean_response_ms
        for name, (metrics, _arch) in systems.items():
            rows.append(
                {
                    "cost_model": cost_name,
                    "system": name,
                    "mean_response_ms": metrics.mean_response_ms,
                    "hit_ratio": metrics.hit_ratio,
                    "push_hits": metrics.push_hits,
                    "speedup_vs_hierarchy": hierarchy_ms / metrics.mean_response_ms,
                    "speedup_vs_hints": hints_ms / metrics.mean_response_ms,
                }
            )
    return ExperimentResult(
        experiment="figure10",
        chart_spec={"kind": "bars", "label": "system", "value": "mean_response_ms", "unit": " ms"},
        description=f"response time under push algorithms ({profile_name}, space-constrained)",
        rows=rows,
        paper_claims={
            "ideal push": "1.21-1.62x over no-push hints (1.54-2.63x over hierarchy)",
            "hierarchical push": "1.12-1.25x over no-push hints",
            "update push": "no appreciable response-time gain over no-push hints",
        },
        notes=[
            "Space-constrained configuration; ideal push replicas are not "
            "charged disk space, per the paper's best-case definition.",
        ],
    )
