"""Table 5: location-hint update load at the root.

Two metadata organizations process the same stream of cache add/drop
events from 64 L1 proxies driven by the DEC trace:

* a **centralized directory**, which receives every update;
* the paper's **filtering hierarchy**, where an update climbs only while
  it is the first copy in the enclosing subtree.

The paper reports 5.7 updates/s (centralized) vs 1.9 updates/s
(hierarchy) -- a ~3x reduction.  The same run also reproduces the
bandwidth arithmetic of section 3.1.1: updates/s x 20 bytes.
"""

from __future__ import annotations

from repro.cache.lru import CacheEntry, LRUCache
from repro.experiments.base import ExperimentResult, resolve_config, trace_for
from repro.hints.propagation import CentralizedDirectoryProtocol, HintPropagationTree
from repro.hints.wire import UPDATE_RECORD_BYTES
from repro.sim.config import ExperimentConfig


def run(
    config: ExperimentConfig | None = None, profile_name: str = "dec"
) -> ExperimentResult:
    """Replay cache add/drop events through both protocols and compare."""
    config = resolve_config(config)
    trace = trace_for(config, profile_name)
    topology = config.topology

    tree = HintPropagationTree.balanced(
        branching=topology.l1_per_l2, leaves=topology.n_l1
    )
    central = CentralizedDirectoryProtocol()

    # Per-L1 data caches generating the inform/retract stream.  The
    # space-constrained capacity keeps evictions (and hence retract
    # traffic) realistic.
    def evict_handler(leaf: int):
        def on_evict(key: int, entry: CacheEntry, reason: str) -> None:
            tree.retract(leaf, key)
            central.retract(leaf, key)

        return on_evict

    caches = [
        LRUCache(config.l1_cache_bytes, on_evict=evict_handler(leaf))
        for leaf in range(topology.n_l1)
    ]

    from repro.cache.lru import LookupResult  # local import to avoid cycle noise

    for request in trace.requests:
        if request.error or not request.cacheable:
            continue
        leaf = topology.l1_of_client(request.client_id)
        if caches[leaf].lookup(request.object_id, request.version) is LookupResult.HIT:
            continue
        caches[leaf].insert(request.object_id, request.size, request.version)
        tree.inform(leaf, request.object_id)
        central.inform(leaf, request.object_id)

    duration = trace.duration
    central_rate = central.messages_received / duration
    root_rate = tree.root_messages / duration
    rows = [
        {
            "organization": "centralized directory",
            "root_updates": central.messages_received,
            "updates_per_s": central_rate,
            "bandwidth_bytes_per_s": central_rate * UPDATE_RECORD_BYTES,
        },
        {
            "organization": "hierarchy",
            "root_updates": tree.root_messages,
            "updates_per_s": root_rate,
            "bandwidth_bytes_per_s": root_rate * UPDATE_RECORD_BYTES,
        },
    ]
    reduction = (
        central.messages_received / tree.root_messages if tree.root_messages else 0.0
    )
    return ExperimentResult(
        experiment="table5",
        description="hint update load at the root: centralized vs filtering hierarchy",
        rows=rows,
        paper_claims={
            "centralized": "5.7 updates/second at the root",
            "hierarchy": "1.9 updates/second at the root (~3x reduction)",
            "bandwidth": "20 B/update; busiest hint cache needs ~38 B/s",
            "measured reduction here": f"{reduction:.1f}x",
        },
        notes=[
            "Request rates are scaled down with the trace, so absolute "
            "updates/s differ; the centralized-vs-hierarchy reduction factor "
            "is the reproduced quantity.",
        ],
    )
