"""Section 3.3's omitted graphs: proxy-hint vs client-hint configuration.

The paper compares the two hint placements of Figure 4 and summarizes (the
graphs were cut for space): with testbed parameters and the DEC trace,
"as long as client caches are large enough so that the false-negative rate
for the client hint caches is below 50%, the alternate configuration is
superior.  At best ... they improve response time by about 20% compared to
proxy hint caches."

This experiment sweeps the client hint cache's false-negative rate and
reports both configurations' mean response times, locating the crossover.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_config, trace_for
from repro.hierarchy.client_hints import ClientHintHierarchy
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.netmodel.testbed import TestbedCostModel
from repro.sim.config import ExperimentConfig
from repro.sim.engine import run_simulation

#: Client hint-cache false-negative rates swept (0 = as complete as the
#: proxy hint cache; 1 = useless client hint cache).
FALSE_NEGATIVE_RATES = (0.0, 0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9, 1.0)


def run(
    config: ExperimentConfig | None = None, profile_name: str = "dec"
) -> ExperimentResult:
    """Sweep client-hint false negatives against the proxy-hint baseline."""
    config = resolve_config(config)
    trace = trace_for(config, profile_name)
    cost = TestbedCostModel()

    proxy_metrics = run_simulation(trace, HintHierarchy(config.topology, cost))
    proxy_ms = proxy_metrics.mean_response_ms

    rows = []
    crossover: float | None = None
    for rate in FALSE_NEGATIVE_RATES:
        client_arch = ClientHintHierarchy(
            config.topology,
            cost,
            client_false_negative_rate=rate,
            seed=config.seed,
        )
        metrics = run_simulation(trace, client_arch)
        superior = metrics.mean_response_ms < proxy_ms
        if not superior and crossover is None and rate > 0:
            crossover = rate
        rows.append(
            {
                "client_fn_rate": rate,
                "client_config_ms": metrics.mean_response_ms,
                "proxy_config_ms": proxy_ms,
                "client_superior": superior,
                "improvement": proxy_ms / metrics.mean_response_ms,
            }
        )
    return ExperimentResult(
        experiment="client_hints",
        description=f"proxy-hint vs client-hint configuration ({profile_name}, testbed)",
        rows=rows,
        paper_claims={
            "crossover": "client config superior while its false-negative rate < ~50%",
            "best case": "~20% response-time improvement at equal hint hit rates",
            "measured crossover here": (
                f"~{crossover}" if crossover is not None else "beyond the sweep"
            ),
        },
        notes=[
            "Client hint-cache capacity is modelled by its induced false-"
            "negative rate, the quantity the paper's summary is stated in.",
        ],
    )
