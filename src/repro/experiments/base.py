"""Shared result type and helpers for the experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.reporting.charts import render_bars, render_series
from repro.reporting.tables import format_table
from repro.runner.trace_cache import cached_trace
from repro.sim.config import ExperimentConfig, default_config
from repro.traces.records import Trace


@dataclass
class ExperimentResult:
    """Structured output of one table/figure reproduction.

    Attributes:
        experiment: Short id ("figure8", "table5", ...).
        description: What the artifact shows.
        rows: The regenerated table rows (each row one dict).
        paper_claims: The paper's corresponding numbers/claims, for the
            side-by-side comparison recorded in EXPERIMENTS.md.
        notes: Scaling caveats and substitutions that apply to this run.
    """

    experiment: str
    description: str
    rows: list[dict] = field(default_factory=list)
    paper_claims: dict[str, str] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    #: Optional chart description consumed by :meth:`render_chart`:
    #: ``{"kind": "xy", "x": col, "y": [cols...], "group": col|None,
    #:   "log_x": bool}`` or ``{"kind": "bars", "label": col, "value": col}``.
    chart_spec: dict | None = None

    def render(self, columns: list[str] | None = None) -> str:
        """Human-readable rendering: table plus claims and notes."""
        parts = [
            format_table(
                self.rows,
                title=f"{self.experiment}: {self.description}",
                columns=columns,
            )
        ]
        if self.paper_claims:
            parts.append("Paper claims:")
            parts.extend(f"  - {key}: {value}" for key, value in self.paper_claims.items())
        if self.notes:
            parts.append("Notes:")
            parts.extend(f"  - {note}" for note in self.notes)
        return "\n".join(parts)

    def render_chart(self) -> str | None:
        """ASCII chart per :attr:`chart_spec`; None when no spec is set.

        Non-numeric cells (e.g. the ``"inf"`` sentinels some sweeps use)
        are skipped rather than plotted.
        """
        spec = self.chart_spec
        if spec is None:
            return None
        if spec["kind"] == "bars":
            values = {
                str(row[spec["label"]]): float(row[spec["value"]])
                for row in self.rows
                if isinstance(row.get(spec["value"]), (int, float))
            }
            return render_bars(values, title=self.experiment, unit=spec.get("unit", ""))

        series: dict[str, list[tuple[float, float]]] = {}
        group_column = spec.get("group")
        for row in self.rows:
            x = row.get(spec["x"])
            if not isinstance(x, (int, float)):
                continue
            if spec.get("log_x") and x <= 0:
                continue  # log axes cannot place zero-delay / zero-size points
            for y_column in spec["y"]:
                y = row.get(y_column)
                if not isinstance(y, (int, float)):
                    continue
                name = y_column
                if group_column is not None:
                    prefix = str(row[group_column])
                    name = f"{prefix}:{y_column}" if len(spec["y"]) > 1 else prefix
                series.setdefault(name, []).append((float(x), float(y)))
        return render_series(
            series,
            title=self.experiment,
            log_x=bool(spec.get("log_x")),
            x_label=spec["x"],
            y_label="/".join(spec["y"]),
        )


def resolve_config(config: ExperimentConfig | None) -> ExperimentConfig:
    """Default the config (keeps every experiment's signature uniform)."""
    return config if config is not None else default_config()


def trace_for(config: ExperimentConfig, profile_name: str) -> Trace:
    """Fetch-or-generate the scaled trace for a profile under a config.

    Traces are pure functions of (profile, seed), so this routes through
    the active :class:`repro.runner.trace_cache.TraceCache`: one in-process
    generation per distinct trace, optionally backed by an on-disk store
    (``--trace-cache`` on the CLI) that eliminates generation entirely on
    warm runs.  Returned traces are shared read-only between experiments.
    """
    return cached_trace(config.profile(profile_name), config.seed)
