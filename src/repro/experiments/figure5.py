"""Figure 5: hit rate vs hint-cache size (DEC trace).

Each proxy's hint cache is a 4-way set-associative array of 16-byte
entries; sweeping its total size trades reach for space.  Tiny hint caches
index little beyond local contents and hit rates collapse to the local
rate; once the hint cache can index roughly the system's distinct-object
population, the global hit rate saturates.

The paper's anchors (full scale): below 10 MB the hint cache adds little;
100 MB tracks "almost all data in the system".  At our scale the knee
lands at ``16 bytes x distinct objects``, which is what the sweep spans.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_config, trace_for
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.hints.hintcache import HINT_RECORD_BYTES
from repro.netmodel.testbed import TestbedCostModel
from repro.sim.config import ExperimentConfig
from repro.sim.engine import run_simulation

#: Hint capacity as a multiple of (16 B x distinct objects in the trace).
CAPACITY_FRACTIONS = (0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, None)


def run(
    config: ExperimentConfig | None = None, profile_name: str = "dec"
) -> ExperimentResult:
    """Sweep hint-cache capacity and report the global hit rate."""
    config = resolve_config(config)
    trace = trace_for(config, profile_name)
    distinct = trace.distinct_objects()
    full_index_bytes = distinct * HINT_RECORD_BYTES
    rows = []
    for fraction in CAPACITY_FRACTIONS:
        capacity = None if fraction is None else max(256, int(full_index_bytes * fraction))
        architecture = HintHierarchy(
            config.topology,
            TestbedCostModel(),
            l1_bytes=None,  # the figure isolates hint capacity: data caches infinite
            hint_capacity_bytes=capacity,
        )
        metrics = run_simulation(trace, architecture)
        rows.append(
            {
                "hint_capacity_kb": "inf" if capacity is None else capacity / 1024,
                "fraction_of_full_index": "inf" if fraction is None else fraction,
                "hit_ratio": metrics.hit_ratio,
                "mean_response_ms": metrics.mean_response_ms,
                "false_negatives": metrics.false_negatives,
            }
        )
    return ExperimentResult(
        experiment="figure5",
        chart_spec={
            "kind": "xy", "x": "hint_capacity_kb", "y": ["hit_ratio"],
            "log_x": True,
        },
        description=f"hit rate vs hint-cache size ({profile_name} trace)",
        rows=rows,
        paper_claims={
            "small hint caches": "<10 MB adds little reach beyond local contents",
            "large hint caches": "100 MB tracks almost all data in the system",
            "entry size": "16 bytes, 4-way set associative",
        },
        notes=[
            f"Full-index size at this scale: {full_index_bytes / 1024:.0f} KB "
            f"({distinct} distinct objects x 16 B).",
        ],
    )
