"""Table 6: speedup of the hint architecture over the data hierarchy.

The ratio of the traditional hierarchy's mean response time to the hint
architecture's, for each trace under the Max, Min, and Testbed access
times (the infinite-disk configuration of Figure 8a, which is what the
paper's table reports).

Paper values::

    Trace     Max    Min    Testbed
    Prodigy   1.80   1.38   2.31
    Berkeley  1.79   1.32   2.79
    DEC       1.62   1.28   1.99

The reproduced claim is the band (every ratio > 1.25) and the ordering
(Testbed > Max > Min for each trace: the more a configuration punishes
extra hops, the more hints win).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_config, trace_for
from repro.experiments.figure8 import architectures_for
from repro.sim.config import ExperimentConfig
from repro.sim.engine import run_simulation
from repro.traces.profiles import all_profiles

#: The paper's Table 6, for side-by-side display.
PAPER_TABLE6 = {
    "prodigy": {"max": 1.80, "min": 1.38, "testbed": 2.31},
    "berkeley": {"max": 1.79, "min": 1.32, "testbed": 2.79},
    "dec": {"max": 1.62, "min": 1.28, "testbed": 1.99},
}


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Compute hierarchy/hints response-time ratios per trace and model."""
    config = resolve_config(config)
    rows = []
    for profile in all_profiles():
        trace = trace_for(config, profile.name)
        row: dict = {"trace": profile.name}
        for cost_name in ("max", "min", "testbed"):
            hierarchy, _directory, hints = architectures_for(
                config, cost_name, "infinite"
            )
            base = run_simulation(trace, hierarchy)
            ours = run_simulation(trace, hints)
            row[cost_name] = base.mean_response_ms / ours.mean_response_ms
            row[f"paper_{cost_name}"] = PAPER_TABLE6[profile.name][cost_name]
        rows.append(row)
    return ExperimentResult(
        experiment="table6",
        description="speedup: traditional hierarchy vs hint architecture",
        rows=rows,
        paper_claims={
            "band": "all speedups between 1.28 and 2.79",
            "ordering": "testbed > max > min per trace",
        },
        notes=["Infinite-disk configuration, matching the published table."],
    )
