"""Failure sensitivity: how gracefully does each architecture degrade?

The paper's design argument (section 5, "Other design issues") is that a
hint-based system fails soft: losing a node "does not prevent the system
from functioning", it merely makes some hints stale, whereas a data
hierarchy funnels every request through a fixed chain of parents, so a
dead L2 or L3 stalls whole subtrees behind timeouts, and a centralized
directory is a single point of failure for every lookup.  The testbed
could not measure that claim; this experiment does.

Sweep: the expected number of crashes per node over the trace, applied as
a seeded MTBF/MTTR renewal process (:class:`repro.faults.profile
.FaultProfile`) over every node population -- L1 proxies, L2/L3 interior
data caches, and metadata nodes (hint relays; metadata node 0 doubles as
the CRISP directory).  Every architecture replays the *same*
:class:`~repro.faults.events.FaultPlan` at each sweep point, so the
comparison is apples-to-apples.

Reported per sweep point: mean response time per architecture, the
*degradation* -- extra milliseconds over that architecture's own
fault-free baseline, the honest unit when baselines differ by 2x -- and
the degraded-mode counters (timeout fallbacks, stale-hint forwards).
The claim under test: at the highest crash rate the hint architecture's
response time degrades strictly less than the data hierarchy's.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_config, trace_for
from repro.faults.profile import FaultProfile
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.netmodel.testbed import TestbedCostModel
from repro.sim.config import ExperimentConfig
from repro.sim.engine import run_comparison

#: Expected crashes per node over the measured trace (0 = fault-free).
CRASH_RATES = (0.0, 0.5, 2.0, 8.0)

#: Fraction of a node's up-time spent repairing (MTTR = MTBF / 4).
REPAIR_RATIO = 4.0

#: Offset separating fault-plan seeds from trace seeds per sweep point.
_PLAN_SEED_STRIDE = 1009


def fault_targets(config: ExperimentConfig) -> list[tuple[str, int]]:
    """Every crashable node in the configured system, deterministically.

    Data nodes (all L1s, all L2s, the L3 root) plus one metadata node per
    L2 group.  Metadata node 0 doubles as the centralized directory, so
    the directory architecture shares the blast radius.
    """
    topology = config.topology
    targets: list[tuple[str, int]] = []
    targets.extend(("l1", node) for node in range(topology.n_l1))
    targets.extend(("l2", node) for node in range(topology.n_l2))
    targets.append(("l3", 0))
    targets.extend(("meta", node) for node in range(topology.n_l2))
    return targets


def plan_for_rate(
    config: ExperimentConfig, duration_s: float, rate: float, index: int
):
    """The sweep point's fault plan (empty at rate 0 = the clean baseline)."""
    if rate <= 0.0:
        return None
    profile = FaultProfile(
        mtbf_s=duration_s / rate,
        mttr_s=duration_s / (rate * REPAIR_RATIO),
        seed=config.seed + _PLAN_SEED_STRIDE * (index + 1),
    )
    return profile.plan(fault_targets(config), duration_s=duration_s)


def _architectures(config: ExperimentConfig) -> list:
    cost = TestbedCostModel()
    return [
        DataHierarchy(config.topology, cost),
        HintHierarchy(config.topology, cost),
        CentralizedDirectoryArchitecture(config.topology, cost),
    ]


def run(
    config: ExperimentConfig | None = None, profile_name: str = "dec"
) -> ExperimentResult:
    """Sweep crash rates and compare degradation across architectures."""
    config = resolve_config(config)
    trace = trace_for(config, profile_name)
    baselines: dict[str, float] = {}
    rows = []
    for index, rate in enumerate(CRASH_RATES):
        plan = plan_for_rate(config, trace.duration, rate, index)
        results = run_comparison(trace, _architectures(config), fault_plan=plan)
        row: dict = {"crashes_per_node": rate}
        for name, metrics in results.items():
            if rate == 0.0:
                baselines[name] = metrics.mean_response_ms
            row[f"{name}_ms"] = round(metrics.mean_response_ms, 3)
            row[f"{name}_degradation_ms"] = round(
                metrics.mean_response_ms - baselines[name], 3
            )
        row["hierarchy_timeouts"] = results["hierarchy"].degraded.timeout_fallbacks
        row["hints_stale_forwards"] = results["hints"].degraded.stale_hint_forwards
        row["directory_timeouts"] = results["directory"].degraded.timeout_fallbacks
        rows.append(row)

    worst = rows[-1]
    fails_soft = (
        worst["hints_degradation_ms"] < worst["hierarchy_degradation_ms"]
    )
    return ExperimentResult(
        experiment="failure_sensitivity",
        description="response-time degradation vs per-node crash rate",
        rows=rows,
        chart_spec={
            "kind": "xy",
            "x": "crashes_per_node",
            "y": [
                "hierarchy_degradation_ms",
                "hints_degradation_ms",
                "directory_degradation_ms",
            ],
        },
        paper_claims={
            "fail-soft hints": "losing a node makes some hints stale but "
            "does not prevent the system from functioning (section 5)",
            "hierarchy fragility": "a request must traverse its fixed chain "
            "of parents, so dead interior caches stall whole subtrees",
        },
        notes=[
            f"Same seeded FaultPlan per sweep point for every architecture; "
            f"MTTR = MTBF/{REPAIR_RATIO:g}, timeouts charged before fallback.",
            "Degradation is mean added ms over each architecture's own "
            "fault-free baseline (ratios mislead: hints start 2x faster, "
            "so equal absolute damage doubles their ratio).",
            "hint response time degrades "
            + ("strictly less" if fails_soft else "NO LESS (claim violated)")
            + f" than the data hierarchy's at {worst['crashes_per_node']:g} "
            f"crashes/node: +{worst['hints_degradation_ms']}ms vs "
            f"+{worst['hierarchy_degradation_ms']}ms.",
        ],
    )
