"""Model-vs-mechanism cross-validation of the hint architecture.

The Figure 8 results use :class:`HintHierarchy`, where hint state is a
directory *model* (instant or fixed-delay visibility).  This experiment
re-runs the same workload through
:class:`~repro.hierarchy.message_hints.MessageLevelHintHierarchy`, where
every proxy runs the real packed hint cache and hints travel as 20-byte
batched updates with the paper's 0-60 s flush jitter.

If the modeling in Figure 8 is sound, the mechanism should land close to
the model -- between the instant-propagation directory and a directory
delayed by the cluster's worst-case staleness -- and far ahead of the
traditional hierarchy.  That is the claim this experiment checks.
"""

from __future__ import annotations

from repro.common.units import MINUTES
from repro.experiments.base import ExperimentResult, resolve_config, trace_for
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.hierarchy.message_hints import MessageLevelHintHierarchy
from repro.netmodel.testbed import TestbedCostModel
from repro.sim.config import ExperimentConfig
from repro.sim.engine import run_simulation


def run(
    config: ExperimentConfig | None = None, profile_name: str = "dec"
) -> ExperimentResult:
    """Compare the modeled directory against the message-level mechanism."""
    config = resolve_config(config)
    trace = trace_for(config, profile_name)
    cost = TestbedCostModel()
    rows = []

    baseline = run_simulation(trace, DataHierarchy(config.topology, cost))
    rows.append(
        {
            "system": "hierarchy (baseline)",
            "mean_response_ms": baseline.mean_response_ms,
            "hit_ratio": baseline.hit_ratio,
            "false_negatives": 0,
            "false_positives": 0,
        }
    )

    for label, architecture in (
        ("hints, modeled (instant)", HintHierarchy(config.topology, cost)),
        (
            "hints, modeled (2 min delay)",
            HintHierarchy(config.topology, cost, hint_delay_s=2 * MINUTES),
        ),
        (
            "hints, message-level",
            MessageLevelHintHierarchy(config.topology, cost, seed=config.seed),
        ),
    ):
        metrics = run_simulation(trace, architecture)
        rows.append(
            {
                "system": label,
                "mean_response_ms": metrics.mean_response_ms,
                "hit_ratio": metrics.hit_ratio,
                "false_negatives": metrics.false_negatives,
                "false_positives": metrics.false_positives,
            }
        )
    return ExperimentResult(
        experiment="message_level",
        description="hint directory model vs the real batched-update mechanism",
        rows=rows,
        paper_claims={
            "expectation": "the wire mechanism (batching <= 60 s/hop) lands "
            "near the modeled directory and far ahead of the hierarchy, "
            "validating Figure 8's modeling",
        },
        notes=[
            "The message-level system runs one packed 16-byte-record hint "
            "cache per proxy and real 20-byte update batches over the "
            "metadata tree.",
        ],
    )
