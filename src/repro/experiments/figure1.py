"""Figure 1: measured access times in the testbed hierarchy.

Three panels, each sweeping object size from 2 KB to 1024 KB:

(a) objects accessed through the three-level hierarchy
    (CLN--L1, CLN--L1--L2, CLN--L1--L2--L3, CLN--L1--L2--L3--SRV);
(b) objects fetched directly from each cache and the server;
(c) requests relayed through the L1 proxy to the specified cache/server.

The paper measured a live Berkeley/San Diego/Austin/Cornell hierarchy; we
regenerate the panels from the calibrated
:class:`~repro.netmodel.testbed.TestbedCostModel` (see DESIGN.md for the
substitution argument).  Anchors checked by the benches: at 8 KB a
hierarchical L3 hit costs ~2.4-2.5x a direct L3 access, with a roughly
500-550 ms absolute gap.
"""

from __future__ import annotations

from repro.common.units import KB
from repro.experiments.base import ExperimentResult
from repro.netmodel.model import AccessPoint
from repro.netmodel.testbed import TestbedCostModel
from repro.sim.config import ExperimentConfig

#: Object sizes from the paper's x-axis (2 KB .. 1024 KB, powers of two).
SIZES_KB = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate the three panels as one table (one row per size)."""
    del config  # Figure 1 is a pure cost-model artifact.
    model = TestbedCostModel()
    rows = []
    for size_kb in SIZES_KB:
        size = size_kb * KB
        row: dict = {"size_kb": size_kb}
        for point in AccessPoint:
            row[f"hier_{point.name.lower()}_ms"] = model.hierarchical_ms(point, size)
        for point in AccessPoint:
            row[f"direct_{point.name.lower()}_ms"] = model.direct_ms(point, size)
        for point in AccessPoint:
            row[f"via_l1_{point.name.lower()}_ms"] = model.via_l1_ms(point, size)
        rows.append(row)

    eight_kb = 8 * KB
    ratio = model.hierarchical_ms(AccessPoint.L3, eight_kb) / model.direct_ms(
        AccessPoint.L3, eight_kb
    )
    gap = model.hierarchical_ms(AccessPoint.L3, eight_kb) - model.direct_ms(
        AccessPoint.L3, eight_kb
    )
    return ExperimentResult(
        experiment="figure1",
        chart_spec={
            "kind": "xy",
            "x": "size_kb",
            "y": ["hier_l3_ms", "direct_l3_ms", "via_l1_l3_ms"],
            "log_x": True,
        },
        description="testbed access times vs object size (hierarchical / direct / via-L1)",
        rows=rows,
        paper_claims={
            "8KB L3 hierarchy-vs-direct gap": "545 ms",
            "8KB L3 hit speedup if accessed directly": "~2.5x",
            "measured here": f"gap {gap:.0f} ms, ratio {ratio:.2f}x",
        },
        notes=[
            "Live testbed replaced by the calibrated analytic cost model "
            "(DESIGN.md section 2)."
        ],
    )
