"""Figure 6: hit rate vs hint propagation delay (DEC trace).

Whenever an object appears in or disappears from any cache, no hint cache
learns of the change for the delay on the x-axis.  Stale hints cost both
false negatives (a fresh copy is invisible -> request goes to the server)
and false positives (a dead copy is still advertised -> wasted probe).

Paper shape claim: "the performance of hint caches will be good as long as
updates can be propagated through the system within a few minutes"; hit
rate degrades as delays stretch toward hours.
"""

from __future__ import annotations

from repro.common.units import MINUTES
from repro.experiments.base import ExperimentResult, resolve_config, trace_for
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.netmodel.testbed import TestbedCostModel
from repro.sim.config import ExperimentConfig
from repro.sim.engine import run_simulation

#: Propagation delays in minutes (the paper's log-scale x-axis, 0..1000).
DELAY_MINUTES = (0.0, 1.0, 5.0, 10.0, 30.0, 100.0, 300.0, 1000.0)


def run(
    config: ExperimentConfig | None = None, profile_name: str = "dec"
) -> ExperimentResult:
    """Sweep the hint propagation delay and report the global hit rate."""
    config = resolve_config(config)
    trace = trace_for(config, profile_name)
    rows = []
    for delay_min in DELAY_MINUTES:
        architecture = HintHierarchy(
            config.topology,
            TestbedCostModel(),
            l1_bytes=None,  # isolate staleness: infinite data and hint caches
            hint_delay_s=delay_min * MINUTES,
        )
        metrics = run_simulation(trace, architecture)
        rows.append(
            {
                "delay_minutes": delay_min,
                "hit_ratio": metrics.hit_ratio,
                "mean_response_ms": metrics.mean_response_ms,
                "false_negatives": metrics.false_negatives,
                "false_positives": metrics.false_positives,
            }
        )
    return ExperimentResult(
        experiment="figure6",
        chart_spec={
            "kind": "xy", "x": "delay_minutes", "y": ["hit_ratio"],
            "log_x": True,
        },
        description=f"hit rate vs hint propagation delay ({profile_name} trace)",
        rows=rows,
        paper_claims={
            "shape": "hit rate holds for delays up to a few minutes, then degrades",
        },
        notes=[
            "Both additions and removals are delayed, as in the paper's "
            "experiment description.",
        ],
    )
