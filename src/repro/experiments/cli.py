"""Command-line runner for the table/figure reproductions.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments figure8 table6
    python -m repro.experiments --all
    python -m repro.experiments figure2 --scale 0.002 --seed 7
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import all_experiments, get_experiment
from repro.sim.config import default_config


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*", help="experiment names to run")
    parser.add_argument("--list", action="store_true", help="list experiment names")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--scale", type=float, default=None, help="trace scale override (e.g. 0.002)"
    )
    parser.add_argument("--seed", type=int, default=None, help="root seed override")
    parser.add_argument(
        "--chart", action="store_true",
        help="also render an ASCII chart for experiments that define one",
    )
    parser.add_argument(
        "--profile", default=None,
        help="workload profile for single-trace experiments "
        "(dec/berkeley/prodigy; experiments that sweep all traces ignore it)",
    )
    parser.add_argument(
        "--export-dir", default=None,
        help="also write each result as <dir>/<experiment>.json and .csv",
    )
    return parser


def _accepts_profile(run) -> bool:
    """Does this experiment's ``run`` take a ``profile_name`` keyword?"""
    import inspect

    return "profile_name" in inspect.signature(run).parameters


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name in all_experiments():
            print(name)
        return 0

    names = all_experiments() if args.all else args.experiments
    if not names:
        print("nothing to run; use --list, --all, or name experiments", file=sys.stderr)
        return 2

    config = default_config()
    if args.scale is not None:
        config = config.with_scale(args.scale)
    if args.seed is not None:
        from dataclasses import replace

        config = replace(config, seed=args.seed)

    status = 0
    for name in names:
        try:
            run = get_experiment(name)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            status = 2
            continue
        started = time.monotonic()
        if args.profile is not None and _accepts_profile(run):
            result = run(config, profile_name=args.profile)
        else:
            result = run(config)
        elapsed = time.monotonic() - started
        print(result.render())
        if args.chart:
            chart = result.render_chart()
            if chart is not None:
                print()
                print(chart)
        if args.export_dir is not None:
            import os

            from repro.reporting.export import save_result

            os.makedirs(args.export_dir, exist_ok=True)
            for extension in ("json", "csv"):
                save_result(
                    result, os.path.join(args.export_dir, f"{name}.{extension}")
                )
        print(f"[{name} completed in {elapsed:.1f}s]")
        print()
    return status


if __name__ == "__main__":
    raise SystemExit(main())
