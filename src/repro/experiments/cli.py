"""Command-line runner for the table/figure reproductions.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments figure8 table6
    python -m repro.experiments --all
    python -m repro.experiments figure2 --scale 0.002 --seed 7
    python -m repro.experiments --all --jobs 4 --trace-cache ~/.cache/repro-traces

``--jobs N`` fans independent experiments out across N worker processes;
``--trace-cache DIR`` persists generated traces content-addressed on disk
so later runs (and sibling workers) reload instead of regenerating.  Both
change only wall-clock: results are identical for any job count, and the
run summary printed at the end shows per-stage timings plus the trace-cache
counters (a warm-cache run reports ``trace generations this run: 0``).
"""

from __future__ import annotations

import argparse
import sys

from repro.common.timing import Stopwatch, format_seconds
from repro.experiments.registry import all_experiments, get_experiment
from repro.runner.parallel import run_experiments
from repro.sim.config import default_config


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help="experiment names to run (an optional leading 'run' verb is "
        "accepted: 'python -m repro.experiments run figure8'; the "
        "'decompose' verb instead renders the latency-decomposition "
        "table for the standard architectures over one trace; the "
        "'timeline' verb runs them with telemetry attached and exports "
        "per-bin time-series rows plus a hit-rate-vs-time chart; the "
        "'profile' verb runs the comparison with the host-time span "
        "profiler attached and writes a Chrome-trace/Perfetto JSON plus "
        "a self-time table)",
    )
    parser.add_argument("--list", action="store_true", help="list experiment names")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--scale", type=float, default=None, help="trace scale override (e.g. 0.002)"
    )
    parser.add_argument("--seed", type=int, default=None, help="root seed override")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run experiments across N worker processes (default 1: in-process)",
    )
    parser.add_argument(
        "--trace-cache", default=None, metavar="DIR",
        help="content-addressed on-disk trace store; traces found there are "
        "reloaded instead of regenerated, fresh ones are persisted",
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="also render an ASCII chart for experiments that define one",
    )
    parser.add_argument(
        "--profile", default=None,
        help="workload profile for single-trace experiments "
        "(dec/berkeley/prodigy; experiments that sweep all traces ignore it)",
    )
    parser.add_argument(
        "--export-dir", default=None,
        help="also write each result as <dir>/<experiment>.json and .csv",
    )
    parser.add_argument(
        "--journeys", default=None, metavar="OUT.jsonl",
        help="with the 'decompose' verb: also stream every measured "
        "request's hop ledger to OUT.jsonl (one JSON object per request)",
    )
    parser.add_argument(
        "--timeline", default=None, metavar="OUT.jsonl",
        help="with the 'timeline' verb: write per-bin telemetry rows to "
        "this file (JSONL, or CSV when the name ends in .csv; default "
        "timeline.jsonl)",
    )
    parser.add_argument(
        "--bin", type=float, default=3600.0, metavar="SECONDS",
        help="timeline bin width in simulated seconds (default 3600 = 1 h)",
    )
    parser.add_argument(
        "--prometheus", default=None, metavar="OUT.prom",
        help="with the 'timeline' verb: also write the final metrics "
        "registry as a Prometheus text exposition",
    )
    parser.add_argument(
        "--policy", default=None, metavar="MAP",
        help="with the 'decompose'/'timeline' verbs: per-level replacement "
        "policies, e.g. 'l1=lfu,l2=lru,l3=random' or a bare 'lfu' for every "
        "level ('random' accepts a seed: 'random:7').  Implies the "
        "space-constrained capacities (policies only differ under "
        "capacity pressure; the default run is unbounded).  Hint-style "
        "architectures store data only at L1, so their cells use the l1 "
        "entry and ignore l2/l3",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="with the 'decompose'/'timeline' verbs: partition the object "
        "space across N shard engines (consistent hashing over a fixed "
        "set of virtual partitions, so results are identical for any N; "
        "combine with --jobs to run shards in parallel).  An explicit "
        "'--shards 1' still runs the sharded engine, so its output diffs "
        "clean against any other shard count; sharded runs partition the "
        "cache populations, so absolute numbers differ from the default "
        "unsharded run by design",
    )
    parser.add_argument(
        "--virtual-partitions", type=int, default=None, metavar="V",
        help="with --shards: fixed hash-space granularity (default 16); "
        "results depend on V but not on the shard count, so keep V "
        "pinned when comparing runs",
    )
    parser.add_argument(
        "--clock-lag", type=float, default=3600.0, metavar="SECONDS",
        help="with --shards: bounded-lag window for the cross-shard "
        "virtual-clock sync (default 3600; results are lag-invariant)",
    )
    parser.add_argument(
        "--engine", choices=("reference", "fast", "auto"), default="reference",
        help="simulation engine for the 'decompose'/'timeline'/'profile' "
        "verbs: 'fast' runs the columnar batch engine (metric-identical; "
        "every standard architecture has a vectorized kernel), 'auto' "
        "falls back to the reference loop where no kernel exists "
        "(default: reference)",
    )
    parser.add_argument(
        "--out", default=None, metavar="OUT.json",
        help="with the 'profile' verb: Chrome-trace/Perfetto JSON output "
        "path (default profile.json; open at https://ui.perfetto.dev or "
        "chrome://tracing)",
    )
    parser.add_argument(
        "--memory", action="store_true",
        help="with the 'profile' verb: sample tracemalloc net/peak "
        "allocations and peak RSS per span (roughly doubles allocation "
        "cost while attached)",
    )
    parser.add_argument(
        "--sim-track", action="store_true",
        help="with the 'profile' verb: lay a simulated-time timeline track "
        "(one lane per architecture, --bin wide bins) beside the "
        "host-time tracks, so one trace shows both clocks",
    )
    return parser


def _accepts_profile(run) -> bool:
    """Does this experiment's ``run`` take a ``profile_name`` keyword?"""
    import inspect

    return "profile_name" in inspect.signature(run).parameters


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # "run" is accepted as an optional leading verb ("repro.experiments run
    # figure8"); "run" itself is not an experiment name, so this is never
    # ambiguous.
    if args.experiments and args.experiments[0] == "run":
        args.experiments = args.experiments[1:]
    if args.experiments and args.experiments[0] == "decompose":
        if args.experiments[1:]:
            print("'decompose' takes no experiment names", file=sys.stderr)
            return 2
        return _run_decompose(args)
    if args.experiments and args.experiments[0] == "timeline":
        if args.experiments[1:]:
            print("'timeline' takes no experiment names", file=sys.stderr)
            return 2
        return _run_timeline(args)
    if args.experiments and args.experiments[0] == "profile":
        if args.experiments[1:]:
            print("'profile' takes no experiment names", file=sys.stderr)
            return 2
        return _run_profile(args)
    if args.out is not None or args.memory or args.sim_track:
        print(
            "--out/--memory/--sim-track require the 'profile' verb",
            file=sys.stderr,
        )
        return 2
    if args.journeys is not None:
        print("--journeys requires the 'decompose' verb", file=sys.stderr)
        return 2
    if args.timeline is not None or args.prometheus is not None:
        print(
            "--timeline/--prometheus require the 'timeline' verb", file=sys.stderr
        )
        return 2
    if args.policy is not None:
        print(
            "--policy requires the 'decompose' or 'timeline' verb", file=sys.stderr
        )
        return 2
    if args.shards is not None or args.virtual_partitions is not None:
        print(
            "--shards/--virtual-partitions require the 'decompose' or "
            "'timeline' verb",
            file=sys.stderr,
        )
        return 2
    if args.list:
        for name in all_experiments():
            print(name)
        return 0
    if args.jobs < 1:
        print(f"--jobs must be at least 1, got {args.jobs}", file=sys.stderr)
        return 2

    names = all_experiments() if args.all else args.experiments
    if not names:
        print("nothing to run; use --list, --all, or name experiments", file=sys.stderr)
        return 2

    config = default_config()
    if args.scale is not None:
        config = config.with_scale(args.scale)
    if args.seed is not None:
        from dataclasses import replace

        config = replace(config, seed=args.seed)

    status = 0
    runnable = []
    for name in names:
        try:
            get_experiment(name)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            status = 2
            continue
        if name not in runnable:  # each experiment runs once per invocation
            runnable.append(name)
    if not runnable:
        return status

    # --profile only affects experiments whose run() takes profile_name;
    # it stays on the sequential in-process path (a per-experiment kwarg
    # does not fit the uniform parallel work unit).
    profile_overrides = {
        name: args.profile
        for name in runnable
        if args.profile is not None and _accepts_profile(get_experiment(name))
    }
    if profile_overrides and args.jobs > 1:
        print(
            "--profile forces --jobs 1 (profile overrides are per-experiment)",
            file=sys.stderr,
        )
        args.jobs = 1

    def announce(timings):
        # Live status on stderr (results print to stdout, in order, below).
        print(
            f"[{timings.experiment} finished in {format_seconds(timings.total_s)}]",
            file=sys.stderr,
            flush=True,
        )

    if profile_overrides:
        summary = _run_with_profile(
            runnable, config, profile_overrides, trace_cache_dir=args.trace_cache
        )
    else:
        summary = run_experiments(
            runnable,
            config,
            jobs=args.jobs,
            trace_cache_dir=args.trace_cache,
            progress=announce,
        )

    from contextlib import nullcontext

    from repro.obs import profiling

    for name in runnable:
        result = summary.results[name]
        timings = next(t for t in summary.timings if t.experiment == name)
        profiler = profiling.active()
        render_span = (
            profiler.span("render", category="runner", experiment=name)
            if profiler is not None
            else nullcontext()
        )
        with render_span, Stopwatch() as render_watch:
            rendered = result.render()
            chart = result.render_chart() if args.chart else None
        timings.render_s = render_watch.elapsed
        # Replace the worker-side note (no render figure yet) with the
        # complete trace-gen/simulate/render breakdown before export.
        result.notes[-1] = timings.note()
        print(rendered)
        if chart is not None:
            print()
            print(chart)
        if args.export_dir is not None:
            import os

            from repro.reporting.export import save_result

            os.makedirs(args.export_dir, exist_ok=True)
            for extension in ("json", "csv"):
                save_result(
                    result, os.path.join(args.export_dir, f"{name}.{extension}")
                )
        print(
            f"[{name} completed in {format_seconds(timings.total_s)}: "
            f"trace_gen={format_seconds(timings.trace_gen_s)} "
            f"simulate={format_seconds(timings.simulate_s)} "
            f"render={format_seconds(timings.render_s)}]"
        )
        print()

    print(summary.render())
    return status


def _standard_architectures(config, cost, policy_arg):
    """Build the standard four, honouring a ``--policy`` map when given.

    Without ``--policy`` this is the historical unbounded construction
    (byte-identical results).  With it, the space-constrained capacities
    apply -- replacement policies only differ under capacity pressure, so
    an unbounded policy run would be indistinguishable from LRU -- with
    the paper's sizing: every data-hierarchy node gets ``l1_cache_bytes``
    (the Figure 8(b) uniform 5 GB, scaled) and hint-style L1 nodes get
    ``hint_data_cache_bytes``.  Hint-style architectures store data only
    at L1, so only the map's ``l1`` entry reaches them.
    """
    from repro.hierarchy.data_hierarchy import DataHierarchy
    from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
    from repro.hierarchy.hint_hierarchy import HintHierarchy
    from repro.hierarchy.icp import IcpHierarchy

    if policy_arg is None:
        return [
            DataHierarchy(config.topology, cost),
            IcpHierarchy(config.topology, cost),
            HintHierarchy(config.topology, cost),
            CentralizedDirectoryArchitecture(config.topology, cost),
        ]
    from repro.cache.policy import parse_policy_map

    policies = parse_policy_map(policy_arg)
    data_kwargs = dict(
        l1_bytes=config.l1_cache_bytes,
        l2_bytes=config.l1_cache_bytes,
        l3_bytes=config.l1_cache_bytes,
        l1_policy=policies.get("l1"),
        l2_policy=policies.get("l2"),
        l3_policy=policies.get("l3"),
    )
    hint_kwargs = dict(
        l1_bytes=config.hint_data_cache_bytes, l1_policy=policies.get("l1")
    )
    return [
        DataHierarchy(config.topology, cost, **data_kwargs),
        IcpHierarchy(config.topology, cost, **data_kwargs),
        HintHierarchy(config.topology, cost, **hint_kwargs),
        CentralizedDirectoryArchitecture(config.topology, cost, **hint_kwargs),
    ]


def _standard_specs(config, cost, policy_arg):
    """Picklable :class:`~repro.runner.specs.ArchitectureSpec` twins of
    :func:`_standard_architectures` (the ``profile`` verb fans out through
    ``run_comparison_parallel``, which builds architectures in workers)."""
    from repro.hierarchy.data_hierarchy import DataHierarchy
    from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
    from repro.hierarchy.hint_hierarchy import HintHierarchy
    from repro.hierarchy.icp import IcpHierarchy
    from repro.runner.specs import ArchitectureSpec

    if policy_arg is None:
        return [
            ArchitectureSpec(factory, (config.topology, cost))
            for factory in (
                DataHierarchy,
                IcpHierarchy,
                HintHierarchy,
                CentralizedDirectoryArchitecture,
            )
        ]
    from repro.cache.policy import parse_policy_map

    policies = parse_policy_map(policy_arg)
    data_kwargs = dict(
        l1_bytes=config.l1_cache_bytes,
        l2_bytes=config.l1_cache_bytes,
        l3_bytes=config.l1_cache_bytes,
        l1_policy=policies.get("l1"),
        l2_policy=policies.get("l2"),
        l3_policy=policies.get("l3"),
    )
    hint_kwargs = dict(
        l1_bytes=config.hint_data_cache_bytes, l1_policy=policies.get("l1")
    )
    return [
        ArchitectureSpec(DataHierarchy, (config.topology, cost), data_kwargs),
        ArchitectureSpec(IcpHierarchy, (config.topology, cost), data_kwargs),
        ArchitectureSpec(HintHierarchy, (config.topology, cost), hint_kwargs),
        ArchitectureSpec(
            CentralizedDirectoryArchitecture, (config.topology, cost), hint_kwargs
        ),
    ]


def _sharded_comparison(args, config, profile_name, specs, timeline_dir=None):
    """Run ``specs`` under ``--shards`` and return the ShardedComparison.

    Raises ValueError for an invalid shard plan (shards < 1, fewer
    virtual partitions than shards, non-positive lag) -- callers turn
    that into a usage error.
    """
    from repro.runner.sharding import (
        DEFAULT_VIRTUAL_PARTITIONS,
        run_comparison_sharded,
    )

    virtual = (
        args.virtual_partitions
        if args.virtual_partitions is not None
        else DEFAULT_VIRTUAL_PARTITIONS
    )
    return run_comparison_sharded(
        config.profile(profile_name),
        config.seed,
        specs,
        shards=args.shards if args.shards is not None else 1,
        virtual_partitions=virtual,
        clock_lag_s=args.clock_lag,
        jobs=args.jobs,
        trace_cache_dir=args.trace_cache,
        timeline_dir=timeline_dir,
        timeline_bin_s=args.bin,
        engine=args.engine,
    )


def _shard_summary_line(comparison) -> str:
    plan = comparison.plan
    return (
        f"[{plan.shards} shard(s) over {plan.virtual_partitions} virtual "
        f"partitions: {sum(comparison.partition_objects)} distinct "
        f"partition objects, fullest shard holds "
        f"{comparison.max_shard_objects}, wall "
        f"{format_seconds(comparison.wall_s)}]"
    )


def _run_profile(args) -> int:
    """The ``profile`` verb: the standard comparison under the span profiler.

    Runs the standard four architectures through
    :func:`~repro.runner.parallel.run_comparison_parallel` with a
    :class:`~repro.obs.profiling.SpanProfiler` attached, writes the span
    forest as Chrome-trace/Perfetto JSON (``--out``, default
    ``profile.json``), and prints the comparison table plus the
    self-time/cumulative-time table.  The table footer reconciles
    span-accounted time against the run's wall-clock (within 1%: every
    instrumented region is a child of the root span).  ``--memory`` adds
    tracemalloc/RSS sampling, ``--sim-track`` lays the simulated-time
    timeline beside the host tracks, ``--jobs N`` profiles the worker
    fan-out (one Perfetto process track per worker pid).
    """
    import os
    import tempfile

    from repro.netmodel.testbed import TestbedCostModel
    from repro.obs import profiling
    from repro.reporting.tables import format_comparison_table
    from repro.runner.parallel import run_comparison_parallel

    if args.jobs < 1:
        print(f"--jobs must be at least 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.bin <= 0:
        print(f"--bin must be positive, got {args.bin}", file=sys.stderr)
        return 2
    config = default_config()
    if args.scale is not None:
        config = config.with_scale(args.scale)
    if args.seed is not None:
        from dataclasses import replace

        config = replace(config, seed=args.seed)
    profile_name = args.profile or "dec"
    if args.trace_cache is not None:
        from repro.runner.trace_cache import (
            TraceCache,
            get_trace_cache,
            set_trace_cache,
        )

        if get_trace_cache().directory != args.trace_cache:
            set_trace_cache(TraceCache(args.trace_cache))
    cost = TestbedCostModel()
    try:
        specs = _standard_specs(config, cost, args.policy)
    except ValueError as exc:
        print(f"--policy: {exc}", file=sys.stderr)
        return 2
    out_path = args.out if args.out is not None else "profile.json"
    profiler = profiling.SpanProfiler(memory=args.memory)
    with tempfile.TemporaryDirectory(prefix="repro-profile-") as scratch:
        timeline_dir = os.path.join(scratch, "timeline") if args.sim_track else None
        with profiling.attached(profiler), Stopwatch() as wall:
            with profiler.span(
                "profile_run",
                category="cli",
                profile=profile_name,
                jobs=args.jobs,
                engine=args.engine,
            ):
                results = run_comparison_parallel(
                    config.profile(profile_name),
                    config.seed,
                    specs,
                    jobs=args.jobs,
                    trace_cache_dir=args.trace_cache,
                    timeline_dir=timeline_dir,
                    timeline_bin_s=args.bin,
                    engine=args.engine,
                    profile_memory=args.memory,
                )
        sim_rows = None
        if timeline_dir is not None:
            from repro.obs.export import read_timeline_jsonl

            sim_rows = []
            for name in results:
                sim_rows.extend(
                    read_timeline_jsonl(os.path.join(timeline_dir, f"{name}.jsonl"))
                )
    profiler.close()
    profiling.write_chrome_trace(profiler, out_path, sim_rows=sim_rows)
    print(
        format_comparison_table(
            results, title=f"architecture comparison ({profile_name})"
        )
    )
    print()
    print(
        profiling.format_profile_table(
            profiling.aggregate_spans(profiler.roots),
            total_s=wall.elapsed,
            title=(
                f"host profile ({profile_name}, jobs={args.jobs}, "
                f"engine={args.engine})"
            ),
        )
    )
    print(f"[chrome trace written to {out_path}; open at https://ui.perfetto.dev]")
    return 0


def _run_decompose(args) -> int:
    """The ``decompose`` verb: latency decomposition of the standard four.

    Runs the data hierarchy, ICP, hints, and the centralized directory
    over one trace and prints the per-step-kind table; with ``--journeys``
    every measured request's hop ledger streams to one JSONL file (the
    ``arch`` field distinguishes the four runs).
    """
    from repro.experiments.base import trace_for
    from repro.netmodel.testbed import TestbedCostModel
    from repro.obs.sink import JourneySink, JsonlJourneySink
    from repro.reporting.tables import format_decomposition_table
    from repro.sim.engine import run_simulation

    config = default_config()
    if args.scale is not None:
        config = config.with_scale(args.scale)
    if args.seed is not None:
        from dataclasses import replace

        config = replace(config, seed=args.seed)
    profile_name = args.profile or "dec"
    if args.trace_cache is not None:
        from repro.runner.trace_cache import (
            TraceCache,
            get_trace_cache,
            set_trace_cache,
        )

        if get_trace_cache().directory != args.trace_cache:
            set_trace_cache(TraceCache(args.trace_cache))
    cost = TestbedCostModel()
    if args.shards is not None or args.virtual_partitions is not None:
        if args.journeys is not None:
            print("--journeys is not supported with --shards", file=sys.stderr)
            return 2
        if args.jobs < 1:
            print(f"--jobs must be at least 1, got {args.jobs}", file=sys.stderr)
            return 2
        try:
            specs = _standard_specs(config, cost, args.policy)
        except ValueError as exc:
            print(f"--policy: {exc}", file=sys.stderr)
            return 2
        try:
            comparison = _sharded_comparison(args, config, profile_name, specs)
        except ValueError as exc:
            print(f"--shards: {exc}", file=sys.stderr)
            return 2
        print(
            format_decomposition_table(
                comparison.results,
                title=(
                    f"latency decomposition ({profile_name}, "
                    f"{comparison.plan.shards} shards, mean ms/request)"
                ),
            )
        )
        print(_shard_summary_line(comparison))
        return 0
    trace = trace_for(config, profile_name)
    try:
        architectures = _standard_architectures(config, cost, args.policy)
    except ValueError as exc:
        print(f"--policy: {exc}", file=sys.stderr)
        return 2
    sink = (
        JsonlJourneySink(args.journeys) if args.journeys is not None else JourneySink()
    )
    results = {}
    with sink:
        for architecture in architectures:
            sink.architecture = architecture.name
            results[architecture.name] = run_simulation(
                trace, architecture, journey_sink=sink, engine=args.engine
            )
    print(
        format_decomposition_table(
            results,
            title=f"latency decomposition ({profile_name}, mean ms/request)",
        )
    )
    if args.journeys is not None:
        print(f"[journeys written to {args.journeys}]")
    return 0


def _run_timeline(args) -> int:
    """The ``timeline`` verb: the standard four with telemetry attached.

    Runs each architecture with a :class:`repro.obs.telemetry.RunTelemetry`
    sampling one shared registry into fixed-width simulated-time bins,
    writes the per-bin rows (``--timeline``, JSONL or CSV), optionally the
    final registry as a Prometheus exposition (``--prometheus``), and
    prints the comparison table, per-architecture warmup-convergence
    lines, and a hit-rate-vs-time chart.
    """
    from repro.experiments.base import trace_for
    from repro.netmodel.testbed import TestbedCostModel
    from repro.obs.export import (
        prometheus_text,
        write_timeline_csv,
        write_timeline_jsonl,
    )
    from repro.obs.telemetry import MetricsRegistry, RunTelemetry, warmup_convergence
    from repro.reporting.tables import format_comparison_table
    from repro.reporting.timeline import render_hit_rate_chart, render_occupancy_chart
    from repro.sim.engine import run_simulation

    if args.bin <= 0:
        print(f"--bin must be positive, got {args.bin}", file=sys.stderr)
        return 2
    config = default_config()
    if args.scale is not None:
        config = config.with_scale(args.scale)
    if args.seed is not None:
        from dataclasses import replace

        config = replace(config, seed=args.seed)
    profile_name = args.profile or "dec"
    if args.trace_cache is not None:
        from repro.runner.trace_cache import (
            TraceCache,
            get_trace_cache,
            set_trace_cache,
        )

        if get_trace_cache().directory != args.trace_cache:
            set_trace_cache(TraceCache(args.trace_cache))
    cost = TestbedCostModel()
    shard_note = None
    if args.shards is not None or args.virtual_partitions is not None:
        import tempfile

        if args.prometheus is not None:
            print(
                "--prometheus is not supported with --shards (no shared "
                "registry across shard engines)",
                file=sys.stderr,
            )
            return 2
        if args.jobs < 1:
            print(f"--jobs must be at least 1, got {args.jobs}", file=sys.stderr)
            return 2
        try:
            specs = _standard_specs(config, cost, args.policy)
        except ValueError as exc:
            print(f"--policy: {exc}", file=sys.stderr)
            return 2
        try:
            with tempfile.TemporaryDirectory(prefix="repro-shards-") as scratch:
                comparison = _sharded_comparison(
                    args, config, profile_name, specs, timeline_dir=scratch
                )
        except ValueError as exc:
            print(f"--shards: {exc}", file=sys.stderr)
            return 2
        results = comparison.results
        rows = []
        for name in results:
            rows.extend(comparison.timeline_rows[name])
        shard_note = _shard_summary_line(comparison)
    else:
        trace = trace_for(config, profile_name)
        try:
            architectures = _standard_architectures(config, cost, args.policy)
        except ValueError as exc:
            print(f"--policy: {exc}", file=sys.stderr)
            return 2
        registry = MetricsRegistry()
        results = {}
        rows = []
        for architecture in architectures:
            telemetry = RunTelemetry(registry, bin_s=args.bin)
            results[architecture.name] = run_simulation(
                trace, architecture, telemetry=telemetry, engine=args.engine
            )
            rows.extend(telemetry.rows)
    out_path = args.timeline if args.timeline is not None else "timeline.jsonl"
    if out_path.endswith(".csv"):
        write_timeline_csv(rows, out_path)
    else:
        write_timeline_jsonl(rows, out_path)
    if args.prometheus is not None:
        with open(args.prometheus, "w", encoding="utf-8") as stream:
            stream.write(prometheus_text(registry))
    print(
        format_comparison_table(
            results, title=f"architecture comparison ({profile_name})"
        )
    )
    print()
    for name in results:
        arch_rows = [row for row in rows if row["arch"] == name]
        print(warmup_convergence(arch_rows).summary_line())
    print()
    print(render_hit_rate_chart(rows))
    if args.chart:
        print()
        print(render_occupancy_chart(rows))
    if shard_note is not None:
        print(shard_note)
    print(f"[timeline rows written to {out_path}]")
    if args.prometheus is not None:
        print(f"[prometheus exposition written to {args.prometheus}]")
    return 0


def _run_with_profile(names, config, profile_overrides, trace_cache_dir=None):
    """Sequential path honouring per-experiment ``--profile`` overrides."""
    from repro.runner.parallel import RunSummary, StageTimings
    from repro.runner.trace_cache import (
        TraceCache,
        TraceCacheStats,
        get_trace_cache,
        set_trace_cache,
    )

    if trace_cache_dir is not None and get_trace_cache().directory != trace_cache_dir:
        set_trace_cache(TraceCache(trace_cache_dir))
    results = {}
    timings = []
    cache = get_trace_cache()
    totals = TraceCacheStats()
    with Stopwatch() as wall:
        for name in names:
            run = get_experiment(name)
            before = cache.stats.snapshot()
            with Stopwatch() as stopwatch:
                if name in profile_overrides:
                    result = run(config, profile_name=profile_overrides[name])
                else:
                    result = run(config)
            delta = cache.stats.since(before)
            timing = StageTimings(
                experiment=name,
                total_s=stopwatch.elapsed,
                trace_gen_s=delta.generation_seconds,
                simulate_s=max(0.0, stopwatch.elapsed - delta.generation_seconds),
                cache=delta,
            )
            result.notes.append(timing.note())
            results[name] = result
            timings.append(timing)
            totals.merge(delta)
    return RunSummary(
        results=results, timings=timings, cache_stats=totals, jobs=1,
        wall_s=wall.elapsed,
    )


if __name__ == "__main__":
    raise SystemExit(main())
