"""Ablations beyond the paper's figures.

Three design questions DESIGN.md calls out, each isolating one choice:

* **ICP baseline** -- the paper argues multicast queries either add hops
  or limit sharing; we run an ICP-style sibling-query hierarchy next to
  the data hierarchy and the hint architecture.
* **Fan-out sweep** -- how the hint architecture's advantage varies with
  the number of L1 proxies per L2 group (wider groups = more copies at L2
  distance, fewer at L3 distance).
* **Metadata-tree branching** -- how the filtering hierarchy's root load
  varies with branching factor (Table 5 generalized).
"""

from __future__ import annotations

from dataclasses import replace

from repro.cache.lru import LookupResult, LRUCache
from repro.experiments.base import ExperimentResult, resolve_config, trace_for
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.hierarchy.icp import IcpHierarchy
from repro.hierarchy.topology import HierarchyTopology
from repro.hints.propagation import HintPropagationTree
from repro.netmodel.testbed import TestbedCostModel
from repro.sim.config import ExperimentConfig
from repro.sim.engine import run_simulation


def run_icp(config: ExperimentConfig | None = None, profile_name: str = "dec") -> ExperimentResult:
    """ICP sibling queries vs plain hierarchy vs hints."""
    config = resolve_config(config)
    trace = trace_for(config, profile_name)
    cost = TestbedCostModel()
    rows = []
    for arch in (
        DataHierarchy(config.topology, cost),
        IcpHierarchy(config.topology, cost),
        HintHierarchy(config.topology, cost),
    ):
        metrics = run_simulation(trace, arch)
        row = {
            "architecture": arch.name,
            "mean_response_ms": metrics.mean_response_ms,
            "hit_ratio": metrics.hit_ratio,
        }
        if isinstance(arch, IcpHierarchy):
            row["sibling_hit_rate"] = (
                arch.sibling_hits / arch.sibling_queries if arch.sibling_queries else 0.0
            )
        rows.append(row)
    return ExperimentResult(
        experiment="ablation_icp",
        description="ICP-style sibling queries vs hierarchy and hints",
        rows=rows,
        paper_claims={
            "expectation": "ICP queries slow every miss and reach only the "
            "sibling group; hints reach every cache without slowing misses",
        },
    )


def run_fanout(config: ExperimentConfig | None = None, profile_name: str = "dec") -> ExperimentResult:
    """Sweep L1-per-L2 fan-out and measure the hint speedup."""
    config = resolve_config(config)
    cost = TestbedCostModel()
    n_l1 = config.topology.n_l1
    rows = []
    for l1_per_l2 in (2, 4, 8, 16):
        if n_l1 % l1_per_l2:
            continue
        topology = HierarchyTopology(
            clients_per_l1=config.topology.clients_per_l1,
            l1_per_l2=l1_per_l2,
            n_l2=n_l1 // l1_per_l2,
        )
        swept = replace(config, topology=topology)
        trace = trace_for(swept, profile_name)
        base = run_simulation(trace, DataHierarchy(topology, cost))
        hints = run_simulation(trace, HintHierarchy(topology, cost))
        rows.append(
            {
                "l1_per_l2": l1_per_l2,
                "n_l2": topology.n_l2,
                "hierarchy_ms": base.mean_response_ms,
                "hints_ms": hints.mean_response_ms,
                "speedup": base.mean_response_ms / hints.mean_response_ms,
            }
        )
    return ExperimentResult(
        experiment="ablation_fanout",
        description="hint speedup vs L2-group fan-out",
        rows=rows,
        paper_claims={
            "expectation": "hints win at every fan-out; wider L2 groups pull "
            "remote hits from L3 distance to L2 distance for both systems",
        },
    )


def run_branching(config: ExperimentConfig | None = None, profile_name: str = "dec") -> ExperimentResult:
    """Sweep metadata-tree branching and measure root update load."""
    config = resolve_config(config)
    trace = trace_for(config, profile_name)
    topology = config.topology
    rows = []
    for branching in (2, 4, 8, 16, 64):
        if branching > topology.n_l1:
            continue
        tree = HintPropagationTree.balanced(branching=branching, leaves=topology.n_l1)
        caches = [LRUCache(config.l1_cache_bytes) for _ in range(topology.n_l1)]
        total_events = 0
        for request in trace.requests:
            if request.error or not request.cacheable:
                continue
            leaf = topology.l1_of_client(request.client_id)
            if caches[leaf].lookup(request.object_id, request.version) is LookupResult.HIT:
                continue
            evicted = caches[leaf].insert(request.object_id, request.size, request.version)
            tree.inform(leaf, request.object_id)
            total_events += 1
            for key in evicted:
                tree.retract(leaf, key)
                total_events += 1
        rows.append(
            {
                "branching": branching,
                "tree_levels": _levels(branching, topology.n_l1),
                "root_messages": tree.root_messages,
                "total_events": total_events,
                "filter_ratio": total_events / tree.root_messages if tree.root_messages else 0.0,
            }
        )
    return ExperimentResult(
        experiment="ablation_branching",
        description="metadata-tree branching vs root update load",
        rows=rows,
        paper_claims={
            "expectation": "any hierarchy filters updates vs a centralized "
            "directory; deeper trees filter no worse at the root",
        },
    )


def run_push_locality(
    config: ExperimentConfig | None = None, profile_name: str = "dec"
) -> ExperimentResult:
    """Does subtree locality change what push caching achieves?

    Section 4.1.3: "if there is locality within subtrees, items popular in
    one subtree but not another will be more widely replicated in the
    subtree where the item is popular."  We generate the same workload
    with and without region-specific popularity and compare hierarchical
    push-on-miss under both.
    """
    from dataclasses import replace as dc_replace

    from repro.hierarchy.hint_hierarchy import HintHierarchy
    from repro.netmodel.model import AccessPoint
    from repro.netmodel.testbed import TestbedCostModel
    from repro.push.hierarchical import HierarchicalPushOnMiss
    from repro.runner.trace_cache import cached_trace

    config = resolve_config(config)
    rows = []
    for label, regional in (("global interest", 0.0), ("regional interest", 0.6)):
        profile = dc_replace(
            config.profile(profile_name),
            regional_interest=regional,
            n_regions=config.topology.n_l2,
        )
        trace = cached_trace(profile, config.seed)
        for push in (False, True):
            policy = (
                HierarchicalPushOnMiss(config.topology, "push-1", seed=config.seed)
                if push
                else None
            )
            arch = HintHierarchy(
                config.topology,
                TestbedCostModel(),
                l1_bytes=config.hint_data_cache_bytes,
                hint_capacity_bytes=config.hint_store_bytes,
                push_policy=policy,
            )
            metrics = run_simulation(trace, arch)
            remote = metrics.requests_by_point[AccessPoint.L2] + metrics.requests_by_point[AccessPoint.L3]
            rows.append(
                {
                    "workload": label,
                    "system": "hints+push-1" if push else "hints",
                    "mean_response_ms": metrics.mean_response_ms,
                    "l2_share_of_remote": (
                        metrics.requests_by_point[AccessPoint.L2] / remote
                        if remote
                        else 0.0
                    ),
                    "push_efficiency": arch.push_stats.efficiency,
                }
            )
    return ExperimentResult(
        experiment="ablation_push_locality",
        description="hierarchical push with vs without subtree interest locality",
        rows=rows,
        paper_claims={
            "expectation": "regional interest concentrates remote hits at "
            "L2 distance and changes where pushed replicas pay off "
            "(section 4.1.3's locality remark)",
        },
    )


def run_negative_caching(
    config: ExperimentConfig | None = None, profile_name: str = "berkeley"
) -> ExperimentResult:
    """How many error-bound server contacts negative caching saves.

    Section 2.2.2 lists negative result caching among the avenues for
    attacking the residual (error/uncachable) misses it leaves out of
    scope.  We replay each trace's error requests through per-proxy
    negative caches at several TTLs and report the saved origin contacts.
    """
    from repro.cache.negative import NegativeResultCache
    from repro.common.units import MINUTES

    config = resolve_config(config)
    trace = trace_for(config, profile_name)
    topology = config.topology
    error_requests = [r for r in trace.requests if r.error]
    rows = [
        {
            "organization": "(none)",
            "negative_ttl": "-",
            "error_requests": len(error_requests),
            "server_contacts": len(error_requests),
            "saved_frac": 0.0,
        }
    ]
    for ttl_minutes in (30.0, 240.0, 24 * 60.0):
        # Per-proxy negative caches: only local repeats are saved.
        local_caches = [
            NegativeResultCache(ttl_s=ttl_minutes * MINUTES)
            for _ in range(topology.n_l1)
        ]
        local_contacts = 0
        # Negative results shared through the hint fabric: a repeat at ANY
        # proxy within the TTL is answered from the collective cache.
        shared_cache = NegativeResultCache(ttl_s=ttl_minutes * MINUTES)
        shared_contacts = 0
        for request in error_requests:
            local = local_caches[topology.l1_of_client(request.client_id)]
            if not local.check(request.object_id, request.time):
                local_contacts += 1
                local.record(request.object_id, request.time)
            if not shared_cache.check(request.object_id, request.time):
                shared_contacts += 1
                shared_cache.record(request.object_id, request.time)
        total = len(error_requests)
        for organization, contacts in (
            ("per-proxy", local_contacts),
            ("hint-shared", shared_contacts),
        ):
            rows.append(
                {
                    "organization": organization,
                    "negative_ttl": f"{ttl_minutes:g} min",
                    "error_requests": total,
                    "server_contacts": contacts,
                    "saved_frac": (total - contacts) / total if total else 0.0,
                }
            )
    return ExperimentResult(
        experiment="ablation_negative_caching",
        description=f"negative result caching on {profile_name}'s error traffic",
        rows=rows,
        paper_claims={
            "expectation": "an extension the paper points to but does not "
            "evaluate: repeated errors for the same URL can be answered "
            "locally within the negative TTL",
        },
    )


def run_plaxton_load(
    config: ExperimentConfig | None = None, profile_name: str = "dec"
) -> ExperimentResult:
    """Fixed metadata tree vs self-configured Plaxton fabric: root load.

    The balanced tree of Table 5 funnels every surviving update through
    one root; the Plaxton fabric gives each object its own virtual tree,
    spreading the same traffic across all nodes (section 3.1.3's load-
    distribution property).  We drive both with the same inform stream and
    compare the busiest node.
    """
    import numpy as np

    from repro.common.ids import node_id_from_name
    from repro.netmodel.topology import GeographicTopology
    from repro.plaxton.metadata import PlaxtonMetadataFabric
    from repro.plaxton.tree import PlaxtonTree

    config = resolve_config(config)
    trace = trace_for(config, profile_name)
    topology = config.topology
    n_l1 = topology.n_l1

    fixed = HintPropagationTree.balanced(branching=topology.l1_per_l2, leaves=n_l1)
    rng = np.random.default_rng(config.seed)
    geo = GeographicTopology(n_l1, topology.n_l2, rng)
    plaxton_tree = PlaxtonTree(
        [node_id_from_name(f"l1-{i}") for i in range(n_l1)], geo
    )
    fabric = PlaxtonMetadataFabric(plaxton_tree)

    object_hashes: dict[int, int] = {}
    caches = [LRUCache(config.l1_cache_bytes) for _ in range(n_l1)]
    for request in trace.requests:
        if request.error or not request.cacheable:
            continue
        leaf = topology.l1_of_client(request.client_id)
        if caches[leaf].lookup(request.object_id, request.version) is LookupResult.HIT:
            continue
        caches[leaf].insert(request.object_id, request.size, request.version)
        object_hash = object_hashes.setdefault(
            request.object_id,
            node_id_from_name(trace.url_for(request.object_id)),
        )
        fixed.inform(leaf, request.object_id)
        fabric.inform(leaf, object_hash)

    fixed_interior_max = max(
        fixed.messages_at(node)
        for node in range(len(fixed.leaves), len(fixed._parent_vector()))
    )
    rows = [
        {
            "organization": "fixed balanced tree",
            "busiest_node_messages": fixed_interior_max,
            "root_messages": fixed.root_messages,
        },
        {
            "organization": "plaxton fabric",
            "busiest_node_messages": fabric.max_node_load(),
            "root_messages": "(per-object roots)",
        },
    ]
    return ExperimentResult(
        experiment="ablation_plaxton_load",
        description="metadata update load: fixed tree root vs Plaxton per-object roots",
        rows=rows,
        paper_claims={
            "expectation": "per-object virtual trees spread the update load "
            "that a fixed hierarchy concentrates near its root",
        },
    )


def run_consistency(
    config: ExperimentConfig | None = None, profile_name: str = "dec"
) -> ExperimentResult:
    """Quantify the weak-consistency distortion the paper factors out.

    Section 2.2.1 argues that Squid's discard-after-two-days weak
    consistency distorts hit rates in both directions: stale data served
    as "hits", and perfectly good data discarded by age.  This ablation
    runs one shared cache under strong (version-invalidation) consistency
    and under the TTL policy and reports both error terms.
    """
    from repro.cache.ttl import TTLCache, TTLLookupResult
    from repro.common.units import DAYS

    config = resolve_config(config)
    trace = trace_for(config, profile_name)
    rows = []

    # Strong consistency: the paper's methodology.
    strong = LRUCache(None)
    strong_hits = 0
    measured = 0
    from repro.cache.lru import LookupResult as StrongResult

    for request in trace.requests:
        if request.error or not request.cacheable:
            continue
        outcome = strong.lookup(request.object_id, request.version)
        if request.time >= trace.warmup:
            measured += 1
            if outcome is StrongResult.HIT:
                strong_hits += 1
        if outcome is not StrongResult.HIT:
            strong.insert(request.object_id, request.size, request.version)
    rows.append(
        {
            "consistency": "strong (invalidation)",
            "apparent_hit_ratio": strong_hits / measured if measured else 0.0,
            "stale_hits_served": 0,
            "fresh_discards": 0,
        }
    )

    for ttl_days in (0.5, 2.0, 8.0):
        ttl_cache = TTLCache(ttl_s=ttl_days * DAYS)
        hits = 0
        seen = 0
        for request in trace.requests:
            if request.error or not request.cacheable:
                continue
            outcome = ttl_cache.lookup(
                request.object_id, request.version, request.time
            )
            is_hit = outcome in (
                TTLLookupResult.FRESH_HIT, TTLLookupResult.STALE_HIT
            )
            if request.time >= trace.warmup:
                seen += 1
                if is_hit:
                    hits += 1
            if not is_hit:
                ttl_cache.insert(
                    request.object_id, request.size, request.version, request.time
                )
        rows.append(
            {
                "consistency": f"weak (TTL {ttl_days:g} days)",
                "apparent_hit_ratio": hits / seen if seen else 0.0,
                "stale_hits_served": ttl_cache.stale_hits_served,
                "fresh_discards": ttl_cache.fresh_discards,
            }
        )
    return ExperimentResult(
        experiment="ablation_consistency",
        description="strong vs Squid-style TTL consistency (the 2.2.1 distortion)",
        rows=rows,
        paper_claims={
            "expectation": "weak consistency inflates apparent hits with "
            "stale data AND discards good data -- noise the paper removes "
            "by simulating strong consistency",
        },
    )


def _levels(branching: int, leaves: int) -> int:
    levels = 1
    count = leaves
    while count > 1:
        count = (count + branching - 1) // branching
        levels += 1
    return levels


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Run all three ablations; rows are concatenated with a study column."""
    config = resolve_config(config)
    combined = ExperimentResult(
        experiment="ablations",
        description=(
            "ICP baseline, fan-out sweep, metadata branching sweep, "
            "consistency-policy comparison"
        ),
    )
    for sub in (
        run_icp(config),
        run_fanout(config),
        run_branching(config),
        run_consistency(config),
        run_plaxton_load(config),
        run_negative_caching(config),
        run_push_locality(config),
    ):
        for row in sub.rows:
            combined.rows.append({"study": sub.experiment, **row})
        combined.paper_claims.update(
            {f"{sub.experiment}: {k}": v for k, v in sub.paper_claims.items()}
        )
    return combined
