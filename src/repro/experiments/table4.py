"""Table 4: characteristics of the trace workloads.

Regenerates the table from the *synthetic* traces at the configured scale
and shows the paper's full-scale figures alongside, so the calibration is
auditable: the distinct/request ratio, span in days, and client binding
behaviour should match; absolute counts scale with ``config.trace_scale``.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_config, trace_for
from repro.sim.config import ExperimentConfig
from repro.traces.analysis import characterize
from repro.traces.profiles import all_profiles

#: The paper's full-scale Table 4 rows, for side-by-side display.
PAPER_TABLE4 = {
    "dec": {"clients": 16_660, "accesses": 22_100_000, "distinct": 4_150_000, "days": 21},
    "berkeley": {"clients": 8_372, "accesses": 8_800_000, "distinct": 1_800_000, "days": 19},
    "prodigy": {"clients": 35_354, "accesses": 4_200_000, "distinct": 1_200_000, "days": 3},
}


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Characterize each generated trace and compare ratios to the paper."""
    config = resolve_config(config)
    rows = []
    for profile in all_profiles():
        stats = characterize(trace_for(config, profile.name))
        paper = PAPER_TABLE4[profile.name]
        rows.append(
            {
                "trace": profile.name,
                "clients": stats.n_clients,
                "accesses": stats.n_requests,
                "distinct_urls": stats.n_distinct_objects,
                "days": round(stats.days, 1),
                "distinct_ratio": stats.distinct_ratio,
                "paper_distinct_ratio": paper["distinct"] / paper["accesses"],
                "uncachable_frac": stats.frac_uncachable_requests,
                "mean_object_kb": stats.mean_object_bytes / 1024,
            }
        )
    return ExperimentResult(
        experiment="table4",
        description="trace workload characteristics (synthetic, scaled)",
        rows=rows,
        paper_claims={
            name: (
                f"{values['clients']:,} clients, {values['accesses']:,} accesses, "
                f"{values['distinct']:,} distinct URLs, {values['days']} days"
            )
            for name, values in PAPER_TABLE4.items()
        },
        notes=[
            f"Counts are scaled by trace_scale={config.trace_scale}; the "
            "distinct/request ratio and span are the calibration targets.",
            "Prodigy uses dynamic client-id binding, as in the original trace.",
        ],
    )
