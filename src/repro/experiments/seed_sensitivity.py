"""Seed sensitivity: the headline speedup is a property of the profile.

Table 6's speedups come from one synthetic trace per profile.  This
experiment regenerates the DEC-profile trace under several independent
seeds and reports the spread of the hierarchy/hints speedup: a small
relative spread means the reproduction's conclusion does not hinge on one
lucky random draw.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_config
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.netmodel.testbed import TestbedCostModel
from repro.sim.config import ExperimentConfig
from repro.sim.engine import run_simulation
from repro.sim.replication import replicate
from repro.traces.records import Trace


def _speedup(config: ExperimentConfig):
    def statistic(trace: Trace) -> float:
        cost = TestbedCostModel()
        base = run_simulation(trace, DataHierarchy(config.topology, cost))
        ours = run_simulation(trace, HintHierarchy(config.topology, cost))
        return base.mean_response_ms / ours.mean_response_ms

    return statistic


def run(
    config: ExperimentConfig | None = None,
    profile_name: str = "dec",
    n_seeds: int = 5,
) -> ExperimentResult:
    """Replicate the testbed speedup across independently-seeded traces."""
    config = resolve_config(config)
    summary = replicate(
        config,
        profile_name,
        _speedup(config),
        statistic_name="speedup (hierarchy/hints, testbed)",
        n_seeds=n_seeds,
    )
    rows = [summary.as_row()]
    rows.extend(
        {"statistic": f"  seed replicate {i}", "mean": value}
        for i, value in enumerate(summary.values)
    )
    return ExperimentResult(
        experiment="seed_sensitivity",
        description=f"speedup stability across {n_seeds} trace seeds ({profile_name})",
        rows=rows,
        paper_claims={
            "reproduction claim": "the Table 6 speedup band is a property "
            "of the workload profile, not of one random trace draw",
            "measured spread": f"{summary.relative_spread:.1%} of the mean",
        },
    )
