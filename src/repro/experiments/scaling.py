"""Population scaling: more clients, higher achievable hit rates.

Section 2.2 leans on Gribble & Brewer and Duska et al.: "increasing the
number of users sharing a cache system increases the hit rates achievable
by that system", which is why scalable cache architectures matter at all.
This experiment makes the claim measurable here: sweep the client
population at a fixed per-client request rate and report the system-wide
(L3) hit ratio.

Expected shape: the global hit rate rises with population (every new
client's compulsory miss is some future client's hit), with diminishing
returns -- exactly the trend both cited studies report.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.base import ExperimentResult, resolve_config
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.netmodel.model import AccessPoint
from repro.netmodel.testbed import TestbedCostModel
from repro.runner.trace_cache import cached_trace
from repro.sim.config import ExperimentConfig
from repro.sim.engine import run_simulation
from repro.traces.profiles import profile_by_name

#: Population multipliers relative to the config's base population.
POPULATION_FACTORS = (0.25, 0.5, 1.0, 2.0)


def run(
    config: ExperimentConfig | None = None, profile_name: str = "dec"
) -> ExperimentResult:
    """Sweep the client population and measure achievable hit rates."""
    config = resolve_config(config)
    base = profile_by_name(profile_name).scaled(
        config.trace_scale, min_clients=config.topology.n_clients_covered
    )
    # The object universe is FIXED: more clients draw from the same web.
    # Build the base catalog once, then set each swept profile's distinct
    # target to the expected coverage of that catalog at its request count,
    # so the generator recovers (approximately) the same catalog and the
    # distinct/request ratio falls as sharing grows -- the effect under test.
    import numpy as np

    from repro.traces.zipf import ZipfSampler, catalog_size_for_distinct

    fresh_share = 1.0 - base.client_repeat_prob
    base_fresh = int(base.n_requests * (1.0 - base.frac_uncachable) * fresh_share)
    catalog = catalog_size_for_distinct(
        max(base_fresh, base.target_distinct),
        int(base.target_distinct * (1.0 - base.frac_uncachable)),
        base.zipf_alpha,
    )
    universe = ZipfSampler(catalog, base.zipf_alpha, np.random.default_rng(0))

    rows = []
    for factor in POPULATION_FACTORS:
        n_clients = max(config.topology.n_l1, int(base.n_clients * factor))
        n_requests = max(1000, int(base.n_requests * factor))
        fresh = int(n_requests * (1.0 - base.frac_uncachable) * fresh_share)
        expected_distinct = universe.expected_distinct(fresh)
        profile = replace(
            base,
            n_clients=n_clients,
            n_requests=n_requests,
            target_distinct=max(
                100, int(expected_distinct / (1.0 - base.frac_uncachable))
            ),
        )
        trace = cached_trace(profile, config.seed)
        metrics = run_simulation(
            trace, DataHierarchy(config.topology, TestbedCostModel())
        )
        rows.append(
            {
                "clients": n_clients,
                "requests": n_requests,
                "system_hit_ratio": metrics.cumulative_hit_ratio_through(
                    AccessPoint.L3
                ),
                "l1_hit_ratio": metrics.cumulative_hit_ratio_through(AccessPoint.L1),
            }
        )
    return ExperimentResult(
        experiment="scaling",
        description=f"achievable hit rate vs client population ({profile_name})",
        rows=rows,
        chart_spec={"kind": "xy", "x": "clients", "y": ["system_hit_ratio"]},
        paper_claims={
            "Gribble & Brewer / Duska et al. (via section 2.2)": "hit rates "
            "achievable by a cache system improve as more clients share it",
        },
        notes=[
            "Requests scale with population (fixed per-client rate), so the "
            "gain comes from sharing, not from longer observation.",
        ],
    )
