"""Figure 8: simulated response times for the three architectures.

For each trace (DEC, Berkeley, Prodigy), each access-time parameterization
(Testbed, Rousskov Min, Rousskov Max), and each disk configuration
(infinite / space-constrained), run:

* ``hierarchy`` -- the traditional three-level data hierarchy;
* ``directory`` -- a CRISP-style centralized directory;
* ``hints`` -- the paper's hint architecture.

Space-constrained capacities follow the paper's split: every data-
hierarchy node gets the full data budget, while hint-architecture L1 nodes
give up 10% of it to the hint store (the paper: 5 GB vs 4.5 GB + 500 MB,
"notice that this arrangement gives more space to the standard
hierarchy").

Paper shape claims: hints beat the hierarchy for every trace and every
parameterization, by 1.28-2.79x (Table 6); the directory lands between.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_config, trace_for
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.netmodel import cost_model_by_name
from repro.sim.config import ExperimentConfig
from repro.sim.engine import run_simulation
from repro.traces.profiles import all_profiles

COST_MODELS = ("testbed", "min", "max")
DISK_CONFIGS = ("infinite", "constrained")


def architectures_for(config: ExperimentConfig, cost_name: str, disk: str):
    """Build the three Figure 8 architectures for one configuration."""
    cost = cost_model_by_name(cost_name)
    if disk == "infinite":
        data_bytes = None
        hint_data_bytes = None
        hint_store = None
    elif disk == "constrained":
        data_bytes = config.l1_cache_bytes
        hint_data_bytes = config.hint_data_cache_bytes
        hint_store = config.hint_store_bytes
    else:
        raise ValueError(f"unknown disk config {disk!r}")
    return [
        DataHierarchy(
            config.topology, cost,
            l1_bytes=data_bytes, l2_bytes=data_bytes, l3_bytes=data_bytes,
        ),
        CentralizedDirectoryArchitecture(config.topology, cost, l1_bytes=data_bytes),
        HintHierarchy(
            config.topology, cost,
            l1_bytes=hint_data_bytes, hint_capacity_bytes=hint_store,
        ),
    ]


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Run the full 3 traces x 3 cost models x 2 disk configs grid."""
    config = resolve_config(config)
    rows = []
    for profile in all_profiles():
        trace = trace_for(config, profile.name)
        for disk in DISK_CONFIGS:
            for cost_name in COST_MODELS:
                row: dict = {
                    "trace": profile.name,
                    "disk": disk,
                    "cost_model": cost_name,
                }
                for architecture in architectures_for(config, cost_name, disk):
                    metrics = run_simulation(trace, architecture)
                    key = architecture.name.split("+")[0]
                    row[f"{key}_ms"] = metrics.mean_response_ms
                row["speedup_hints"] = row["hierarchy_ms"] / row["hints_ms"]
                rows.append(row)
    return ExperimentResult(
        experiment="figure8",
        description="mean response time: hierarchy vs directory vs hints",
        rows=rows,
        paper_claims={
            "ordering": "hints < directory < hierarchy for every configuration",
            "speedups (Table 6)": "1.28-2.79x hierarchy/hints",
            "constrained config": "standard hierarchy is given MORE total disk",
        },
        notes=[
            "Min/Max use Rousskov's size-independent medians; Testbed is the "
            "size-dependent calibrated model.",
        ],
    )
