"""Queueing validation: emergent contention vs the analytic load model.

Two independent implementations of "busy caches slow things down" exist in
this library: the closed-form M/M/1 inflation of
:class:`~repro.netmodel.queueing.LoadAwareCostModel` and the FIFO-server
replay of :mod:`repro.sim.queueing_sim`.  This experiment drives both over
the same workload at matched utilizations and checks that they agree on
the *conclusion* (the hint architecture's advantage grows with load) --
the model-vs-mechanism discipline applied to the paper's section 2.1.1
hypothesis.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_config, trace_for
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.netmodel.queueing import LoadAwareCostModel
from repro.netmodel.testbed import TestbedCostModel
from repro.sim.config import ExperimentConfig
from repro.sim.engine import run_simulation
from repro.sim.queueing_sim import QueueingReplay, compression_for_target_load

#: Target utilizations of the busiest node.
TARGET_LOADS = (0.2, 0.5, 0.8)


def run(
    config: ExperimentConfig | None = None, profile_name: str = "dec"
) -> ExperimentResult:
    """Compare analytic vs emergent queueing at matched utilizations."""
    config = resolve_config(config)
    trace = trace_for(config, profile_name)
    idle_cost = TestbedCostModel()
    rows = []

    for target in TARGET_LOADS:
        # Emergent: replay both architectures through FIFO servers at a
        # compression that drives the hierarchy's busiest node to target.
        calibration = compression_for_target_load(
            trace, DataHierarchy(config.topology, idle_cost), target
        )
        hierarchy_replay = QueueingReplay(
            DataHierarchy(config.topology, idle_cost), compression=calibration
        )
        hints_replay = QueueingReplay(
            HintHierarchy(config.topology, idle_cost), compression=calibration
        )
        hierarchy_q = hierarchy_replay.run(trace)
        hints_q = hints_replay.run(trace)

        # Analytic: the closed-form model at the same utilization.
        loaded = LoadAwareCostModel(idle_cost, load=target)
        hierarchy_a = run_simulation(trace, DataHierarchy(config.topology, loaded))
        hints_a = run_simulation(trace, HintHierarchy(config.topology, loaded))

        rows.append(
            {
                "target_load": target,
                "achieved_root_util": hierarchy_q.utilization_by_level["l3"],
                "emergent_speedup": (
                    hierarchy_q.mean_response_ms / hints_q.mean_response_ms
                ),
                "analytic_speedup": (
                    hierarchy_a.mean_response_ms / hints_a.mean_response_ms
                ),
                "hierarchy_queue_wait_ms": hierarchy_q.mean_queue_wait_ms,
                "hints_queue_wait_ms": hints_q.mean_queue_wait_ms,
            }
        )
    return ExperimentResult(
        experiment="queueing_validation",
        description="emergent FIFO contention vs the analytic M/M/1 load model",
        rows=rows,
        paper_claims={
            "hypothesis (2.1.1)": "busy nodes increase the importance of "
            "reducing hops; both implementations must agree",
        },
        notes=[
            "Compression is calibrated so the hierarchy's busiest node hits "
            "the target utilization; the hint system, which spreads load "
            "across the leaves, runs cooler at the same offered traffic.",
            "Emergent speedups exceed the analytic ones: the replay sees "
            "diurnal bursts (transient queues far above the average "
            "utilization), which the steady-state M/M/1 factor averages "
            "away.  Both agree on the direction and monotonicity -- the "
            "claim under test.",
        ],
    )
