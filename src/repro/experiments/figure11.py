"""Figure 11: efficiency and bandwidth of the push algorithms (DEC trace).

(a) **Efficiency**: the fraction of all pushed bytes that are later
    accessed before being evicted or invalidated.
(b) **Bandwidth**: bytes/s of pushed data next to bytes/s of demand
    fetches, per algorithm.

Paper shape claims: update push is the most efficient (~1/3 of pushed
bytes used); the hierarchical algorithms run at 4-13% efficiency and can
inflate total bandwidth by up to ~4x over demand-only, trading bandwidth
for latency.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_config
from repro.experiments.figure10 import run_systems
from repro.sim.config import ExperimentConfig

#: Systems whose push behaviour the figure reports.
PUSH_SYSTEMS = (
    "hints+update-push",
    "hints+push-1",
    "hints+push-half",
    "hints+push-all",
)


def run(
    config: ExperimentConfig | None = None,
    profile_name: str = "dec",
    cost_name: str = "testbed",
) -> ExperimentResult:
    """Measure push efficiency and bandwidth for each algorithm."""
    config = resolve_config(config)
    systems = run_systems(config, profile_name, cost_name)
    demand_only_bw = systems["hints"][1].push_stats.demand_bandwidth_bytes_per_s()
    rows = []
    for name in PUSH_SYSTEMS:
        _metrics, arch = systems[name]
        stats = arch.push_stats
        total_bw = stats.push_bandwidth_bytes_per_s() + stats.demand_bandwidth_bytes_per_s()
        rows.append(
            {
                "system": name,
                "efficiency": stats.efficiency,
                "pushed_mb": stats.pushed_bytes / (1024 * 1024),
                "used_mb": stats.used_bytes / (1024 * 1024),
                "push_bw_bytes_per_s": stats.push_bandwidth_bytes_per_s(),
                "demand_bw_bytes_per_s": stats.demand_bandwidth_bytes_per_s(),
                "bw_inflation_vs_demand_only": (
                    total_bw / demand_only_bw if demand_only_bw else 0.0
                ),
            }
        )
    return ExperimentResult(
        experiment="figure11",
        description=f"push efficiency and bandwidth ({profile_name}, {cost_name})",
        rows=rows,
        paper_claims={
            "update push efficiency": "~one third of pushed data is used",
            "hierarchical push efficiency": "4-13%",
            "bandwidth": "hierarchical push inflates bandwidth up to ~4x demand-only",
        },
        notes=[
            "Efficiency counts a pushed replica as used on its first demand "
            "hit; replicas evicted or invalidated unread count as waste.",
        ],
    )
