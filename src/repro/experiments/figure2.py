"""Figure 2: sources of cache misses vs global cache size.

One infinite population of clients shares a single LRU cache whose size is
swept; every access is classified as hit / compulsory / capacity /
communication / error / uncachable, per-request and per-byte.

Paper shape claims this reproduction preserves:

* even an infinite cache misses a lot -- compulsory misses dominate
  (DEC: ~19% of requests are first references);
* capacity misses vanish once the cache reaches a few GB (scaled here);
* Berkeley/Prodigy show markedly more uncachable requests than DEC.
"""

from __future__ import annotations

from repro.cache.classify import MissClass, MissClassifier, MissCounts
from repro.cache.lru import LRUCache
from repro.experiments.base import ExperimentResult, resolve_config, trace_for
from repro.sim.config import ExperimentConfig
from repro.traces.profiles import all_profiles
from repro.traces.records import Trace

#: Cache sizes as fractions of the trace's distinct-object byte volume;
#: 0 means no cache is too small to matter, None means infinite.
SIZE_FRACTIONS = (0.01, 0.05, 0.1, 0.2, 0.4, 0.8, 1.5, None)


def _unique_bytes(trace: Trace) -> int:
    sizes: dict[int, int] = {}
    for request in trace.requests:
        sizes[request.object_id] = request.size
    return sum(sizes.values())


def miss_breakdown(trace: Trace, capacity_bytes: int | None) -> dict:
    """Classify the whole trace against one shared cache of the given size.

    The warmup window fills the cache but its accesses are not reported
    (counters are reset at the boundary), matching the paper's "first two
    days warm our caches" methodology.
    """
    classifier = MissClassifier(LRUCache(capacity_bytes))
    counters_reset = False
    for request in trace.requests:
        if not counters_reset and request.time >= trace.warmup:
            classifier.counts = MissCounts()
            counters_reset = True
        classifier.access(request)
    counts = classifier.counts
    row = {
        "cache_mb": (capacity_bytes or 0) / (1024 * 1024) if capacity_bytes else float("inf"),
        "total_miss": counts.miss_ratio(),
        "total_byte_miss": counts.byte_miss_ratio(),
    }
    for miss_class in MissClass:
        row[miss_class.name.lower()] = counts.miss_ratio(miss_class)
        row[f"byte_{miss_class.name.lower()}"] = counts.byte_miss_ratio(miss_class)
    return row


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Sweep global cache size for each trace and break down the misses."""
    config = resolve_config(config)
    rows = []
    for profile in all_profiles():
        trace = trace_for(config, profile.name)
        unique = _unique_bytes(trace)
        for fraction in SIZE_FRACTIONS:
            capacity = None if fraction is None else max(1, int(unique * fraction))
            row = {"trace": profile.name, "size_fraction": fraction if fraction else "inf"}
            row.update(miss_breakdown(trace, capacity))
            rows.append(row)
    return ExperimentResult(
        experiment="figure2",
        chart_spec={
            "kind": "xy", "x": "cache_mb", "y": ["total_miss"],
            "group": "trace", "log_x": True,
        },
        description="miss-class breakdown vs global shared cache size",
        rows=rows,
        paper_claims={
            "DEC compulsory share": "~19% of all requests are compulsory misses",
            "capacity misses": "minor for multi-gigabyte caches",
            "Berkeley/Prodigy": "significant uncachable and communication misses",
        },
        notes=[
            "Cache sizes are expressed as fractions of the trace's distinct-"
            "object byte volume (the paper's 0-35 GB axis, scaled).",
        ],
    )
