"""Table 3: Squid cache hierarchy performance from Rousskov's measurements.

The table has two halves: the per-level component times (client connect /
disk / proxy reply, min and max) and the derived totals (Total
Hierarchical, Total Client Direct, Total via L1).  We encode the component
times as data and regenerate every derived cell with the paper's
composition rules; the test suite pins all 24 derived cells to the
published values exactly.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.netmodel.model import AccessPoint
from repro.netmodel.rousskov import MISS_SERVER, ROUSSKOV_COMPONENTS, RousskovCostModel
from repro.sim.config import ExperimentConfig

_LEVEL_LABELS = {
    AccessPoint.L1: "Leaf",
    AccessPoint.L2: "Intermediate",
    AccessPoint.L3: "Root",
    AccessPoint.SERVER: "Miss",
}


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate Table 3 (components and derived totals)."""
    del config  # pure data derivation
    minimum = RousskovCostModel("min")
    maximum = RousskovCostModel("max")
    rows = []
    for point in AccessPoint:
        row: dict = {"level": _LEVEL_LABELS[point]}
        if point is AccessPoint.SERVER:
            row["connect_min"] = row["connect_max"] = ""
            row["disk_min"] = MISS_SERVER.min_ms
            row["disk_max"] = MISS_SERVER.max_ms
            row["reply_min"] = row["reply_max"] = ""
        else:
            components = ROUSSKOV_COMPONENTS[point]
            row["connect_min"] = components.client_connect.min_ms
            row["connect_max"] = components.client_connect.max_ms
            row["disk_min"] = components.disk.min_ms
            row["disk_max"] = components.disk.max_ms
            row["reply_min"] = components.proxy_reply.min_ms
            row["reply_max"] = components.proxy_reply.max_ms
        row["hier_min"] = minimum.hierarchical_ms(point)
        row["hier_max"] = maximum.hierarchical_ms(point)
        row["direct_min"] = minimum.direct_ms(point)
        row["direct_max"] = maximum.direct_ms(point)
        row["via_l1_min"] = minimum.via_l1_ms(point)
        row["via_l1_max"] = maximum.via_l1_ms(point)
        rows.append(row)
    return ExperimentResult(
        experiment="table3",
        description="Squid hierarchy access-time bounds (Rousskov components, paper's composition)",
        rows=rows,
        paper_claims={
            "Leaf total (hier)": "163 / 352 ms",
            "Intermediate total (hier)": "271 / 2767 ms",
            "Root total (hier)": "531 / 4667 ms",
            "Miss total (hier)": "981 / 7217 ms",
        },
        notes=["Derived cells reproduce the published table exactly (see tests)."],
    )
