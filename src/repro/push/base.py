"""Push-policy interface and accounting.

A policy inspects fetch events and returns :class:`PushAction` s -- extra
replicas to create.  The host architecture applies them (charging disk
space), and :class:`PushStats` tracks the two figures of merit from the
paper's Figure 11: *efficiency* (fraction of pushed bytes later read
before being evicted or invalidated) and *bandwidth* (pushed bytes over
time, compared against demand bytes).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.traces.records import Request


@dataclass(frozen=True)
class PushAction:
    """One replica to create: put (object, version) at an L1 proxy.

    ``age_entry`` implements the update-push adaptivity knob of section
    4.1.2: "whenever a cache updates an object, the cache ages the object
    by moving it down the LRU list.  Thus, objects that are updated many
    times without being read will be evicted."  When set, the host demotes
    the pushed entry to the eviction end of the target's LRU list.
    """

    target_l1: int
    object_id: int
    size: int
    version: int
    age_entry: bool = False


class PushPolicy(abc.ABC):
    """Decides what to replicate on each fetch event.

    The default implementations push nothing, so concrete policies override
    only the events they care about.
    """

    #: Short name used in experiment reports (e.g. "push-1", "update-push").
    name: str = "abstract-push"

    def on_remote_fetch(
        self,
        now: float,
        request: Request,
        requester_l1: int,
        source_l1: int,
        lca_level: int,
    ) -> list[PushAction]:
        """Called after a cache-to-cache transfer.

        ``lca_level`` is the metadata-hierarchy level of the least common
        ancestor of requester and source (2 = same L2 subtree, 3 = across
        L2 subtrees).
        """
        return []

    def on_server_fetch(
        self,
        now: float,
        request: Request,
        requester_l1: int,
        communication_miss: bool,
        stale_holders: dict[int, int],
    ) -> list[PushAction]:
        """Called after an origin-server fetch.

        ``stale_holders`` maps L1 nodes to the (older) version they hold;
        it is non-empty exactly when some cache still stores a stale copy.
        ``communication_miss`` is True when the fetch was triggered by an
        object update rather than a first reference.
        """
        return []


@dataclass
class PushStats:
    """Efficiency and bandwidth accounting for one simulation run."""

    pushed_count: int = 0
    pushed_bytes: int = 0
    used_count: int = 0
    used_bytes: int = 0
    wasted_count: int = 0  # pushed copies evicted/invalidated before use
    wasted_bytes: int = 0
    skipped_count: int = 0  # actions dropped (already cached, rate limit)
    demand_bytes: int = 0  # bytes moved by ordinary demand fetches
    _first_event_s: float | None = field(default=None, repr=False)
    _last_event_s: float | None = field(default=None, repr=False)

    def note_time(self, now: float) -> None:
        """Track the span of activity for bandwidth computations."""
        if self._first_event_s is None:
            self._first_event_s = now
        self._last_event_s = now

    @property
    def efficiency(self) -> float:
        """Fraction of pushed bytes that were later accessed (Figure 11a)."""
        if self.pushed_bytes == 0:
            return 0.0
        return self.used_bytes / self.pushed_bytes

    @property
    def efficiency_by_count(self) -> float:
        """Fraction of pushed replicas that were later accessed."""
        if self.pushed_count == 0:
            return 0.0
        return self.used_count / self.pushed_count

    def push_bandwidth_bytes_per_s(self) -> float:
        """Average push bandwidth over the active span (Figure 11b)."""
        span = self._span()
        return self.pushed_bytes / span if span > 0 else 0.0

    def demand_bandwidth_bytes_per_s(self) -> float:
        """Average demand-fetch bandwidth over the active span."""
        span = self._span()
        return self.demand_bytes / span if span > 0 else 0.0

    def _span(self) -> float:
        if self._first_event_s is None or self._last_event_s is None:
            return 0.0
        return self._last_event_s - self._first_event_s
