"""Push caching (paper section 4): move data near clients ahead of demand.

Push policies plug into :class:`repro.hierarchy.hint_hierarchy.HintHierarchy`
and are consulted on the two events the paper's algorithms key off:

* a **remote fetch** (a cache-to-cache transfer whose least common ancestor
  is some level of the metadata hierarchy) -- the trigger for
  *hierarchical push on miss* (push-1 / push-half / push-all);
* a **server fetch** caused by a communication miss -- the trigger for
  *update push*.

The *ideal push* upper bound is not a policy: it is the hint hierarchy's
``charge_remote_as_l1`` flag, which replaces every L2/L3 hit with an L1
hit without charging disk space, exactly as section 4.1.1 defines it.

All policies observe the paper's two restrictions: no knowledge of future
accesses, and no fetching of objects that are not already cached somewhere
in the system.
"""

from repro.push.base import PushAction, PushPolicy, PushStats
from repro.push.hierarchical import HierarchicalPushOnMiss
from repro.push.nopush import NoPush
from repro.push.update_push import UpdatePush

__all__ = [
    "HierarchicalPushOnMiss",
    "NoPush",
    "PushAction",
    "PushPolicy",
    "PushStats",
    "UpdatePush",
]
