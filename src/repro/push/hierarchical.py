"""Hierarchical push on miss (paper section 4.1.3).

"When a cache fetches an object from a cousin for which a level-L parent
is the least common ancestor in the metadata hierarchy, the cache
supplying the object also pushes the object to a random node in each of
the level-(L-1) subtrees that share the level-L parent."

Intuition: if two subtrees of a hierarchy access an item, many subtrees
probably will; replication breadth therefore tracks popularity without any
explicit popularity counters.

Three aggressiveness settings from the paper's evaluation:

* **push-1** -- one random node per eligible subtree;
* **push-half** -- half of the nodes in each eligible subtree;
* **push-all** -- every node in each eligible subtree.

In the paper's three-level system, eligible subtrees are: on an
L3-distance fetch, every L2 group (each contributing 1 / half / all of its
L1 members); on an L2-distance fetch, every level-1 subtree under that L2
parent -- and a level-1 subtree is a single L1 cache, so all three
settings push to every sibling there (matching Figure 9's "pushes object B
to all level-1 nodes under that level-2 parent").
"""

from __future__ import annotations

import numpy as np

from repro.hierarchy.topology import HierarchyTopology
from repro.push.base import PushAction, PushPolicy
from repro.traces.records import Request

#: Aggressiveness settings and the fraction of each subtree they cover.
_MODES = ("push-1", "push-half", "push-all")


class HierarchicalPushOnMiss(PushPolicy):
    """Push to sibling subtrees on cache-to-cache fetches.

    Args:
        topology: The hierarchy the metadata tree follows.
        mode: ``"push-1"``, ``"push-half"``, or ``"push-all"``.
        seed: Randomness for target selection within subtrees.
    """

    def __init__(self, topology: HierarchyTopology, mode: str, seed: int = 0) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.topology = topology
        self.mode = mode
        self.name = mode
        self._rng = np.random.default_rng(seed)

    def on_remote_fetch(
        self,
        now: float,
        request: Request,
        requester_l1: int,
        source_l1: int,
        lca_level: int,
    ) -> list[PushAction]:
        if lca_level <= 1:
            return []
        targets = self._targets(requester_l1, source_l1, lca_level)
        return [
            PushAction(
                target_l1=node,
                object_id=request.object_id,
                size=request.size,
                version=request.version,
            )
            for node in targets
        ]

    # ------------------------------------------------------------------
    # target selection
    # ------------------------------------------------------------------
    def _targets(self, requester_l1: int, source_l1: int, lca_level: int) -> list[int]:
        exclude = {requester_l1, source_l1}
        if lca_level >= 3:
            # Eligible subtrees: every L2 group under the (single) L3 root.
            subtrees = [self.topology.l1_nodes_of_l2(g) for g in range(self.topology.n_l2)]
        else:
            # Eligible subtrees: the level-1 subtrees (individual L1 caches)
            # under the shared L2 parent.
            group = self.topology.l2_of_l1(requester_l1)
            subtrees = [[node] for node in self.topology.l1_nodes_of_l2(group)]
        targets: list[int] = []
        for members in subtrees:
            eligible = [n for n in members if n not in exclude]
            if not eligible:
                continue
            targets.extend(self._pick(eligible))
        return targets

    def _pick(self, eligible: list[int]) -> list[int]:
        if self.mode == "push-all" or len(eligible) == 1:
            return list(eligible)
        if self.mode == "push-1":
            return [int(self._rng.choice(eligible))]
        # "Half of the nodes" rounds *up*: a 3-node subtree pushes to 2,
        # never 1 (ceil, matching the paper's push-half description).
        count = (len(eligible) + 1) // 2
        chosen = self._rng.choice(eligible, size=count, replace=False)
        return [int(n) for n in chosen]
