"""The demand-only base case: never push anything."""

from __future__ import annotations

from repro.push.base import PushPolicy


class NoPush(PushPolicy):
    """Base-case policy (the paper's "no push" bars): replicate on demand only."""

    name = "no-push"
