"""Update push (paper section 4.1.2).

"When an object is modified, a good list of candidates to reference the
new version of the object is the list of caches that previously cached the
old version."  So: when the system fetches an object because of a
communication miss, push the fresh copy to every cache still holding the
stale version.

Adaptivity knobs from the paper:

* an upper limit on update-push bandwidth -- pushes beyond the budget are
  discarded ("caches place an upper limit on the update-fetch bandwidth
  they will consume and discard update-fetch requests that exceed that
  rate");
* aging of repeatedly-updated-but-unread objects is implemented by the
  host architecture demoting pushed entries in LRU order (the policy flags
  each action; see :meth:`HintHierarchy._apply_pushes` marking replicas as
  pending until first use).
"""

from __future__ import annotations

from repro.push.base import PushAction, PushPolicy
from repro.traces.records import Request


class UpdatePush(PushPolicy):
    """Push freshly-updated objects to holders of the stale version.

    Args:
        max_bandwidth_bytes_per_s: Optional cap on average push bandwidth;
            ``None`` is unlimited.  The cap is enforced against the total
            bytes this policy has pushed since its first event, which is
            the long-run rate the paper's knob controls.
        age_pushed_entries: Demote pushed replicas in the target's LRU
            order so objects updated many times without being read age out
            (the paper's first adaptivity mechanism).  Off by default: the
            paper notes that "in resource-rich configurations, this aging
            will be slow", and our demotion is a full move to the eviction
            end -- the aggressive, resource-poor setting.
    """

    name = "update-push"

    def __init__(
        self,
        max_bandwidth_bytes_per_s: float | None = None,
        age_pushed_entries: bool = False,
    ) -> None:
        if max_bandwidth_bytes_per_s is not None and max_bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth cap must be positive when given")
        self.max_bandwidth_bytes_per_s = max_bandwidth_bytes_per_s
        self.age_pushed_entries = age_pushed_entries
        self._bytes_pushed = 0
        self._first_event: float | None = None
        self.discarded_for_rate = 0

    def on_server_fetch(
        self,
        now: float,
        request: Request,
        requester_l1: int,
        communication_miss: bool,
        stale_holders: dict[int, int],
    ) -> list[PushAction]:
        if not communication_miss or not stale_holders:
            return []
        if self._first_event is None:
            self._first_event = now
        actions: list[PushAction] = []
        for node in sorted(stale_holders):
            if node == requester_l1:
                continue
            if not self._within_budget(now, request.size):
                self.discarded_for_rate += 1
                continue
            actions.append(
                PushAction(
                    target_l1=node,
                    object_id=request.object_id,
                    size=request.size,
                    version=request.version,
                    age_entry=self.age_pushed_entries,
                )
            )
            self._bytes_pushed += request.size
        return actions

    def _within_budget(self, now: float, size: int) -> bool:
        if self.max_bandwidth_bytes_per_s is None:
            return True
        start = self._first_event if self._first_event is not None else now
        elapsed = max(now - start, 1.0)
        return (self._bytes_pushed + size) / elapsed <= self.max_bandwidth_bytes_per_s
