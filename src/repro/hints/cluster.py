"""A cluster of hint nodes exchanging batched updates (section 3.2, live).

Where :class:`~repro.hints.directory.HintDirectory` *models* hint
propagation with a single delay parameter, this module *runs* it: every
node batches its updates and POSTs them to its metadata-tree neighbors on
the paper's randomized 0-60 s period; batches travel over links with
latency; received updates are applied to the local hint cache and
forwarded along the tree (arrival edge excluded, so a tree delivers each
update exactly once per node).

This closes the loop between Figure 6 and the mechanism: with per-hop
batching of up to 60 s and a three-level tree, an update reaches every
hint cache within a few minutes -- exactly the staleness regime Figure 6
shows to be tolerable.  ``benchmarks/test_bench_propagation.py`` measures
the distribution.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.common.errors import TopologyError
from repro.hints.node import HintNode
from repro.hints.records import MachineId
from repro.hints.wire import (
    MAX_UPDATE_PERIOD_S,
    decode_updates,
    encode_updates,
)


class HintCluster:
    """Event-driven simulation of hint nodes on a metadata tree.

    Args:
        parents: Tree as a parent vector (``None`` marks the root); node
            indices double as tree positions.
        hint_capacity_bytes: Per-node hint-cache size.
        link_latency_s: One-way latency of every tree edge.
        max_period_s: Upper bound of the uniform batching period.
        seed: Randomness for the per-node flush jitter.
    """

    def __init__(
        self,
        parents: list[int | None],
        hint_capacity_bytes: int = 1 << 20,
        link_latency_s: float = 0.1,
        max_period_s: float = MAX_UPDATE_PERIOD_S,
        seed: int = 0,
    ) -> None:
        roots = [i for i, parent in enumerate(parents) if parent is None]
        if len(roots) != 1:
            raise TopologyError(f"tree needs exactly one root, found {len(roots)}")
        if link_latency_s < 0 or max_period_s <= 0:
            raise TopologyError("latency must be >= 0 and period > 0")
        self.parents = list(parents)
        self.root = roots[0]
        self.link_latency_s = link_latency_s
        self.max_period_s = max_period_s
        self._rng = np.random.default_rng(seed)

        self.nodes = [
            HintNode(i, hint_capacity_bytes) for i in range(len(parents))
        ]
        self._neighbors: list[list[int]] = [[] for _ in parents]
        for child, parent in enumerate(parents):
            if parent is not None:
                if not 0 <= parent < len(parents):
                    raise TopologyError(f"node {child} has bad parent {parent}")
                self._neighbors[child].append(parent)
                self._neighbors[parent].append(child)

        # Event heap: (time, seq, kind, node, payload).
        self._events: list[tuple[float, int, str, int, object]] = []
        self._seq = itertools.count()
        self._flush_scheduled = [False] * len(parents)
        self._failed = [False] * len(parents)
        self.now = 0.0
        self.batches_sent = 0
        self.bytes_sent = [0] * len(parents)
        self.batches_lost_to_failures = 0

    @classmethod
    def balanced(cls, branching: int, leaves: int, **kwargs) -> "HintCluster":
        """Build over the same balanced tree shape Table 5 uses."""
        from repro.hints.propagation import HintPropagationTree

        tree = HintPropagationTree.balanced(branching=branching, leaves=leaves)
        return cls(parents=tree.parent_vector(), **kwargs)

    # ------------------------------------------------------------------
    # external API
    # ------------------------------------------------------------------
    def local_inform(self, node: int, url_hash: int, now: float) -> None:
        """Node's data cache stored an object (drives a future flush)."""
        self._advance(now)
        self.nodes[node].inform(url_hash, now)
        self._ensure_flush(node, now)

    def local_invalidate(self, node: int, url_hash: int, now: float) -> None:
        """Node's data cache dropped an object."""
        self._advance(now)
        self.nodes[node].invalidate(url_hash, now)
        self._ensure_flush(node, now)

    def find_nearest(self, node: int, url_hash: int, now: float) -> MachineId | None:
        """What node's hint cache currently knows (after advancing time)."""
        self._advance(now)
        return self.nodes[node].find_nearest(url_hash)

    def run_until(self, time: float) -> None:
        """Process all flushes and deliveries up to ``time``."""
        self._advance(time)

    def visibility_delays(self, url_hash: int, origin: int) -> list[float]:
        """Per-node delay from the origin's inform to local visibility.

        Only nodes that have learned of the object are included; call
        :meth:`run_until` far enough ahead first.
        """
        start = self.nodes[origin].first_learned.get(url_hash)
        if start is None:
            raise KeyError(f"node {origin} never informed about {url_hash:#x}")
        return [
            node.first_learned[url_hash] - start
            for node in self.nodes
            if node.index != origin and url_hash in node.first_learned
        ]

    def coverage(self, url_hash: int) -> float:
        """Fraction of live nodes whose hint cache knows of the object."""
        live = [n for n in self.nodes if not self._failed[n.index]]
        knowing = sum(1 for node in live if url_hash in node.first_learned)
        return knowing / len(live) if live else 0.0

    # ------------------------------------------------------------------
    # failures and reconfiguration
    # ------------------------------------------------------------------
    def fail_node(self, node: int, now: float) -> None:
        """Crash a metadata node: it stops flushing, forwarding, receiving.

        A failed interior node partitions the tree -- updates crossing it
        are lost (counted in :attr:`batches_lost_to_failures`) until
        :meth:`reconfigure` installs a new tree, which is what the paper's
        self-configuring Plaxton hierarchy provides.
        """
        self._advance(now)
        if not 0 <= node < len(self.nodes):
            raise TopologyError(f"no such node {node}")
        self._failed[node] = True

    def recover_node(self, node: int, now: float) -> None:
        """Bring a crashed metadata node back on its existing tree edges.

        The node resumes flushing/forwarding/receiving and re-advertises
        its own holdings (its hint cache survived locally; what it missed
        while down re-converges as neighbors keep batching).  Use
        :meth:`reconfigure` instead when the topology itself changed.
        """
        self._advance(now)
        if not 0 <= node < len(self.nodes):
            raise TopologyError(f"no such node {node}")
        if not self._failed[node]:
            return
        self._failed[node] = False
        revived = self.nodes[node]
        machine = revived.machine
        for url_hash in list(revived.first_learned):
            existing = revived.cache.find_nearest(url_hash)
            if existing is not None and existing == machine:
                revived.inform(url_hash, now)
        if revived.outbox:
            self._ensure_flush(node, now)

    def reconfigure(self, parents: list[int | None], now: float) -> None:
        """Install a new metadata tree over the surviving nodes.

        Hint caches and pending outboxes survive (they belong to the
        proxies, not the tree); only the forwarding topology changes.
        Edges may not touch failed nodes.
        """
        self._advance(now)
        if len(parents) != len(self.nodes):
            raise TopologyError("reconfiguration must cover every node slot")
        roots = [
            i for i, parent in enumerate(parents)
            if parent is None and not self._failed[i]
        ]
        if len(roots) != 1:
            raise TopologyError(
                f"need exactly one live root, found {len(roots)}"
            )
        neighbors: list[list[int]] = [[] for _ in parents]
        for child, parent in enumerate(parents):
            if parent is None:
                continue
            if not 0 <= parent < len(parents):
                raise TopologyError(f"node {child} has bad parent {parent}")
            if self._failed[child] or self._failed[parent]:
                continue  # edges touching failed nodes simply do not exist
            neighbors[child].append(parent)
            neighbors[parent].append(child)
        # Every live node must be reachable from the live root, otherwise
        # the "new" tree still leaves someone partitioned.
        reachable = {roots[0]}
        frontier = [roots[0]]
        while frontier:
            current = frontier.pop()
            for neighbor in neighbors[current]:
                if neighbor not in reachable:
                    reachable.add(neighbor)
                    frontier.append(neighbor)
        live = {i for i in range(len(parents)) if not self._failed[i]}
        if reachable != live:
            missing = sorted(live - reachable)
            raise TopologyError(f"live nodes {missing} unreachable from the root")
        self.parents = list(parents)
        self.root = roots[0]
        self._neighbors = neighbors
        # Re-advertise local knowledge so the new tree re-converges: every
        # live node re-queues its own holdings.
        for node in self.nodes:
            if self._failed[node.index]:
                continue
            machine = node.machine
            for url_hash in list(node.first_learned):
                existing = node.cache.find_nearest(url_hash)
                if existing is not None and existing == machine:
                    node.inform(url_hash, now)
            if node.outbox:
                self._ensure_flush(node.index, now)

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def _ensure_flush(self, node: int, now: float) -> None:
        if self._flush_scheduled[node]:
            return
        when = now + self._rng.uniform(0.0, self.max_period_s)
        heapq.heappush(self._events, (when, next(self._seq), "flush", node, None))
        self._flush_scheduled[node] = True

    def _advance(self, until: float) -> None:
        while self._events and self._events[0][0] <= until:
            time, _seq, kind, node, payload = heapq.heappop(self._events)
            self.now = max(self.now, time)
            if kind == "flush":
                self._do_flush(node, time)
            else:
                self._do_deliver(node, payload, time)
        self.now = max(self.now, until)

    def _do_flush(self, node: int, now: float) -> None:
        self._flush_scheduled[node] = False
        if self._failed[node]:
            return
        pending = self.nodes[node].drain_outbox()
        if not pending:
            return
        for neighbor in self._neighbors[node]:
            updates = [
                item.update for item in pending if item.exclude_neighbor != neighbor
            ]
            if not updates:
                continue
            blob = encode_updates(updates)
            self.bytes_sent[node] += len(blob)
            self.batches_sent += 1
            heapq.heappush(
                self._events,
                (
                    now + self.link_latency_s,
                    next(self._seq),
                    "deliver",
                    neighbor,
                    (node, blob),
                ),
            )

    def _do_deliver(self, node: int, payload: object, now: float) -> None:
        if self._failed[node]:
            self.batches_lost_to_failures += 1
            return
        src, blob = payload  # type: ignore[misc]
        for update in decode_updates(blob):
            self.nodes[node].apply_update(update, from_neighbor=src, now=now)
        self._ensure_flush(node, now)
