"""Location-hint system (the paper's primary contribution, Section 3).

The hint system separates data paths from metadata paths: data lives only
in leaf proxy caches, while a metadata hierarchy propagates *location
hints* -- small fixed-size records saying "the nearest known copy of object
X is at cache Y".  A proxy that misses locally consults its local hint
cache (microseconds), then either fetches the object directly from a peer
cache (one cache-to-cache hop) or goes straight to the origin server.

Layers, prototype-faithful to simulation-level:

* :mod:`repro.hints.records` -- the 16-byte packed hint record.
* :mod:`repro.hints.wire` -- the 20-byte update message, batching, and the
  randomized 0-60 s update period (anti-synchronization per Floyd/Jacobson).
* :mod:`repro.hints.hintcache` -- 4-way set-associative hint cache over a
  packed byte array (exactly the prototype's layout).
* :mod:`repro.hints.storage` -- the same layout over an mmap'ed file.
* :mod:`repro.hints.directory` -- the simulation-level hint view with
  capacity limits (Figure 5) and propagation delay (Figure 6).
* :mod:`repro.hints.propagation` -- the hierarchical update-filtering
  protocol and its root-load accounting (Table 5).
"""

from repro.hints.arithmetic import (
    caches_indexable,
    hint_index_entries,
    index_reach_ratio,
    update_bandwidth_bytes_per_s,
)
from repro.hints.cluster import HintCluster
from repro.hints.directory import HintDirectory, HintLookup
from repro.hints.node import HintNode
from repro.hints.hintcache import HINT_RECORD_BYTES, HintCache
from repro.hints.propagation import CentralizedDirectoryProtocol, HintPropagationTree
from repro.hints.records import HintRecord, MachineId
from repro.hints.squid_module import SquidHintModule
from repro.hints.storage import MmapHintStore
from repro.hints.wire import (
    UPDATE_RECORD_BYTES,
    HintAction,
    HintUpdate,
    UpdateBatcher,
    decode_updates,
    encode_updates,
)

__all__ = [
    "HINT_RECORD_BYTES",
    "UPDATE_RECORD_BYTES",
    "CentralizedDirectoryProtocol",
    "HintAction",
    "HintCache",
    "HintCluster",
    "HintDirectory",
    "HintNode",
    "HintLookup",
    "HintPropagationTree",
    "HintRecord",
    "HintUpdate",
    "MachineId",
    "MmapHintStore",
    "SquidHintModule",
    "UpdateBatcher",
    "caches_indexable",
    "decode_updates",
    "encode_updates",
    "hint_index_entries",
    "index_reach_ratio",
    "update_bandwidth_bytes_per_s",
]
