"""The Squid-facing facade of the prototype (section 3.2, verbatim).

"We have added the protocol for maintaining location-hints to Squid
version 1.1.20.  There are three primary interface commands between Squid
and the hint cache": *inform*, *invalidate*, and *find nearest*.  "The
system sends hint updates to neighboring caches as HTTP POST requests to
the 'route://updates' URL."

:class:`SquidHintModule` is that boundary, speaking the proxy's language:
URL strings in, machine addresses out, POST bodies for neighbor exchange.
Inside it composes the pieces built elsewhere -- MD5 URL hashing, the
(optionally mmap-backed) packed hint store, and the randomized update
batcher.  Two modules wired back-to-back are a two-proxy deployment.
"""

from __future__ import annotations

import numpy as np

from repro.common.ids import object_id_from_url
from repro.hints.hintcache import HintCache
from repro.hints.records import MachineId
from repro.hints.storage import MmapHintStore
from repro.hints.wire import HintAction, HintUpdate, UpdateBatcher, decode_updates

#: The in-Squid URL hint batches are POSTed to.
UPDATES_URL = "route://updates"


class SquidHintModule:
    """One proxy's hint module behind the prototype's three commands.

    Args:
        machine: This proxy's identity (goes into outgoing hints).
        hint_capacity_bytes: Size of the hint store.
        store_path: When given, the store is a memory-mapped file at this
            path (the prototype's layout); otherwise it lives in memory.
        seed: Jitter for the randomized update period.
    """

    def __init__(
        self,
        machine: MachineId,
        hint_capacity_bytes: int = 1 << 20,
        store_path: str | None = None,
        seed: int = 0,
    ) -> None:
        self.machine = machine
        if store_path is not None:
            self._store: HintCache | MmapHintStore = MmapHintStore(
                store_path, capacity_bytes=hint_capacity_bytes
            )
        else:
            self._store = HintCache(capacity_bytes=hint_capacity_bytes)
        self._batcher = UpdateBatcher(rng=np.random.default_rng(seed))

    # ------------------------------------------------------------------
    # the three commands (paper section 3.2)
    # ------------------------------------------------------------------
    def inform(self, url: str, now: float) -> None:
        """A copy of ``url`` is now stored locally; advertise it."""
        url_hash = object_id_from_url(url)
        self._store.inform(url_hash, self.machine)
        self._batcher.add(
            HintUpdate(
                action=HintAction.INFORM, object_id=url_hash, machine=self.machine
            ),
            now,
        )

    def invalidate(self, url: str, now: float) -> None:
        """The local copy of ``url`` is gone; advertise the non-presence."""
        url_hash = object_id_from_url(url)
        self._store.invalidate(url_hash)
        self._batcher.add(
            HintUpdate(
                action=HintAction.INVALIDATE, object_id=url_hash, machine=self.machine
            ),
            now,
        )

    def find_nearest(self, url: str) -> MachineId | None:
        """Where is the nearest known copy of ``url``? (local lookup)"""
        return self._store.find_nearest(object_id_from_url(url))

    # ------------------------------------------------------------------
    # neighbor exchange over route://updates
    # ------------------------------------------------------------------
    def poll_outgoing(self, now: float) -> tuple[str, bytes] | None:
        """If the randomized period elapsed, the POST to send.

        Returns ``(url, body)`` -- always :data:`UPDATES_URL` -- or ``None``
        when there is nothing to send yet.
        """
        body = self._batcher.poll(now)
        if body is None:
            return None
        return UPDATES_URL, body

    def handle_post(self, url: str, body: bytes) -> int:
        """Apply a neighbor's update batch; returns updates applied.

        Raises ``ValueError`` for unknown URLs or malformed bodies, the
        way the real handler would reject a bad request.
        """
        if url != UPDATES_URL:
            raise ValueError(f"unexpected POST target {url!r}")
        updates = decode_updates(body)
        for update in updates:
            if update.action is HintAction.INFORM:
                self._store.inform(update.object_id, update.machine)
            else:
                existing = self._store.find_nearest(update.object_id)
                if existing is not None and existing == update.machine:
                    self._store.invalidate(update.object_id)
        return len(updates)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the backing store (no-op for the in-memory variant)."""
        if isinstance(self._store, MmapHintStore):
            self._store.close()

    def __enter__(self) -> "SquidHintModule":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
