"""The prototype's hint cache: a packed array managed 4-way set-associative.

Paper section 3.2.1: "our design stores a node's hint cache in a memory
mapped file consisting of an array of small, fixed-sized entries ... The
system currently stores hints in an array that it manages as a 4-way
associative cache indexed by the URL hash."  This module implements that
structure over an in-memory ``bytearray`` (the mmap'ed variant lives in
:mod:`repro.hints.storage`); lookups and inserts touch exactly one set of
four 16-byte slots, which is why the prototype could fault a missing hint
in with a single disk access.

The measured in-memory lookup time was 4.3 microseconds on a 1997 Ultra-2;
``benchmarks/test_bench_hint_lookup.py`` reproduces the measurement.
"""

from __future__ import annotations

from repro.hints.records import INVALID_HASH, RECORD_BYTES, HintRecord, MachineId

#: Bytes per hint record (16, pinned by tests to the paper's figure).
HINT_RECORD_BYTES = RECORD_BYTES


class HintCache:
    """Fixed-size, k-way set-associative hint store over a packed buffer.

    Args:
        capacity_bytes: Total buffer size; the number of sets is
            ``capacity_bytes // (associativity * 16)``.
        associativity: Slots per set (the prototype uses 4).
        buffer: Optional pre-existing buffer (e.g. an ``mmap``); must be
            exactly ``capacity_bytes`` long and is used in place.

    LRU within a set is approximated the way fixed-layout caches do it: on
    insertion into a full set, the victim is the slot whose entry was least
    recently *installed or refreshed* (slot order is rotated on access so
    that recently used entries sit at lower slot indices).
    """

    def __init__(
        self,
        capacity_bytes: int,
        associativity: int = 4,
        buffer: bytearray | memoryview | None = None,
    ) -> None:
        if associativity <= 0:
            raise ValueError(f"associativity must be positive, got {associativity}")
        set_bytes = associativity * HINT_RECORD_BYTES
        n_sets = capacity_bytes // set_bytes
        if n_sets <= 0:
            raise ValueError(
                f"capacity {capacity_bytes} B holds no {associativity}-way sets"
            )
        self.associativity = associativity
        self.n_sets = n_sets
        self.capacity_bytes = n_sets * set_bytes
        if buffer is None:
            buffer = bytearray(self.capacity_bytes)
        if len(buffer) < self.capacity_bytes:
            raise ValueError(
                f"buffer of {len(buffer)} B too small for {self.capacity_bytes} B cache"
            )
        self._buf = memoryview(buffer)
        self.lookups = 0
        self.insertions = 0
        self.conflict_evictions = 0
        #: Successful *invalidate* commands (staleness corrections).
        self.invalidations = 0

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def capacity_entries(self) -> int:
        """Maximum number of hints the cache can hold."""
        return self.n_sets * self.associativity

    def _set_range(self, url_hash: int) -> tuple[int, int]:
        set_index = url_hash % self.n_sets
        start = set_index * self.associativity * HINT_RECORD_BYTES
        return start, start + self.associativity * HINT_RECORD_BYTES

    def _slot(self, start: int, way: int) -> memoryview:
        offset = start + way * HINT_RECORD_BYTES
        return self._buf[offset : offset + HINT_RECORD_BYTES]

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def find_nearest(self, url_hash: int) -> MachineId | None:
        """The prototype's *find nearest* command: look up one URL hash."""
        self.lookups += 1
        start, _end = self._set_range(url_hash)
        for way in range(self.associativity):
            record = HintRecord.unpack(bytes(self._slot(start, way)))
            if record is not None and record.url_hash == url_hash:
                if way != 0:
                    self._promote(start, way)
                return record.machine
        return None

    def inform(self, url_hash: int, machine: MachineId) -> HintRecord | None:
        """The prototype's *inform* command: record a (new) nearest copy.

        Returns the hint displaced by a set conflict, if any -- displaced
        hints are exactly the "reach" loss that makes small hint caches in
        Figure 5 ineffective.
        """
        self.insertions += 1
        record = HintRecord(url_hash=url_hash, machine=machine)
        start, _end = self._set_range(url_hash)
        empty_way: int | None = None
        for way in range(self.associativity):
            existing = HintRecord.unpack(bytes(self._slot(start, way)))
            if existing is None:
                if empty_way is None:
                    empty_way = way
            elif existing.url_hash == url_hash:
                self._slot(start, way)[:] = record.pack()
                self._promote(start, way)
                return None
        if empty_way is not None:
            self._slot(start, empty_way)[:] = record.pack()
            self._promote(start, empty_way)
            return None
        # Set full: displace the coldest slot (highest index after rotation).
        victim_way = self.associativity - 1
        victim = HintRecord.unpack(bytes(self._slot(start, victim_way)))
        self._slot(start, victim_way)[:] = record.pack()
        self._promote(start, victim_way)
        self.conflict_evictions += 1
        return victim

    def invalidate(self, url_hash: int) -> bool:
        """The prototype's *invalidate* command: drop the hint for a hash."""
        start, _end = self._set_range(url_hash)
        for way in range(self.associativity):
            record = HintRecord.unpack(bytes(self._slot(start, way)))
            if record is not None and record.url_hash == url_hash:
                self._slot(start, way)[:] = bytes(HINT_RECORD_BYTES)
                self.invalidations += 1
                return True
        return False

    def __len__(self) -> int:
        count = 0
        for set_index in range(self.n_sets):
            start = set_index * self.associativity * HINT_RECORD_BYTES
            for way in range(self.associativity):
                blob = bytes(self._slot(start, way))
                if int.from_bytes(blob[:8], "little") != INVALID_HASH:
                    count += 1
        return count

    def _promote(self, start: int, way: int) -> None:
        """Rotate slot ``way`` to position 0 within its set (MRU first)."""
        if way == 0:
            return
        set_view = self._buf[start : start + self.associativity * HINT_RECORD_BYTES]
        snapshot = bytes(set_view)
        hot = snapshot[way * HINT_RECORD_BYTES : (way + 1) * HINT_RECORD_BYTES]
        rest = snapshot[: way * HINT_RECORD_BYTES] + snapshot[(way + 1) * HINT_RECORD_BYTES :]
        set_view[:] = hot + rest
