"""Simulation-level hint directory with capacity and staleness.

Architecture simulations need a fast answer to "what does this node's hint
cache say about object X at time t?".  :class:`HintDirectory` models the
collective hint state the way the paper's simulator does:

* **Ground truth** -- which caches currently hold which (object, version);
  maintained synchronously by the architecture.
* **Visible view** -- what hint caches have learned so far.  Inform /
  retract events become visible ``propagation_delay`` seconds after they
  happen (Figure 6 delays both additions and removals), and the visible
  view lives in a bounded set-associative index whose entry count models a
  hint cache of a given byte size at 16 bytes/entry (Figure 5).

Hint error taxonomy (paper section 3.1.1), surfaced by :class:`HintLookup`:

* *false negative* -- the view knows no holder although one exists; the
  request goes straight to the server (never a second lookup: "do not slow
  down misses").
* *false positive* -- the view names a holder that no longer has the
  object; the requester pays a wasted probe and then goes to the server.
* *suboptimal positive* -- the view names a farther holder when a closer
  one exists; the request still hits, just slower.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable

from repro.cache.setassoc import SetAssociativeCache
from repro.hints.hintcache import HINT_RECORD_BYTES


@dataclass(frozen=True)
class HintLookup:
    """Result of consulting a hint cache for one object."""

    holders: tuple[int, ...]  # visible holder nodes, unordered
    false_negative: bool  # no visible holder although ground truth has one


class HintDirectory:
    """Global hint state with propagation delay and bounded capacity.

    Args:
        capacity_bytes: Hint-cache size being modelled; ``None`` means
            unbounded (the paper's default configuration tracks "virtually
            all of the nodes ... at once").  Entries cost 16 bytes each.
        propagation_delay_s: Seconds before an inform/retract becomes
            visible to hint caches (Figure 6's x-axis).
        associativity: Set associativity of the bounded index (4, as in the
            prototype).

    The directory also counts every inform/retract event, which is the
    update-load figure Table 5 and the bandwidth arithmetic need.
    """

    def __init__(
        self,
        capacity_bytes: int | None = None,
        propagation_delay_s: float = 0.0,
        associativity: int = 4,
    ) -> None:
        if propagation_delay_s < 0:
            raise ValueError(f"delay must be non-negative, got {propagation_delay_s}")
        self.propagation_delay_s = propagation_delay_s
        self.capacity_bytes = capacity_bytes

        # Ground truth: object -> {node -> version}.
        self._truth: dict[int, dict[int, int]] = {}
        # Visible view: object -> set of holder nodes.  Bounded or not.
        self._visible: SetAssociativeCache[set[int]] | dict[int, set[int]]
        self._visible_is_dict = capacity_bytes is None
        if capacity_bytes is None:
            self._visible = {}
        else:
            n_sets = max(1, capacity_bytes // (associativity * HINT_RECORD_BYTES))
            self._visible = SetAssociativeCache(n_sets=n_sets, associativity=associativity)
        # Pending visibility events: (visible_time, seq, action, object, node).
        self._pending: list[tuple[float, int, str, int, int]] = []
        self._seq = itertools.count()

        self.inform_events = 0
        self.retract_events = 0
        self.false_negatives = 0
        self.false_positives_recorded = 0
        #: Stale hints actively dropped after a probe found the copy gone
        #: (:meth:`drop_visible` successes -- the staleness corrections).
        self.corrections = 0

    # ------------------------------------------------------------------
    # ground-truth maintenance (called synchronously by architectures)
    # ------------------------------------------------------------------
    def inform(
        self, now: float, object_id: int, node: int, version: int, *, visible: bool = True
    ) -> None:
        """A copy of ``object_id`` is now stored at ``node``.

        ``visible=False`` updates ground truth only: the copy exists, but
        the announcement was lost in flight (a dropped hint batch or a
        dead metadata subtree under fault injection), so no hint cache
        will ever learn of it -- a future *false negative*.
        """
        holders = self._truth.get(object_id)
        if holders is None:
            self._truth[object_id] = {node: version}
        else:
            holders[node] = version
        self.inform_events += 1
        if visible:
            self._schedule(now, "add", object_id, node)

    def retract(
        self, now: float, object_id: int, node: int, *, visible: bool = True
    ) -> None:
        """The copy at ``node`` is gone (evicted or invalidated).

        ``visible=False`` updates ground truth only: the copy is gone but
        the retraction was lost (dropped batch, dead metadata node, or
        the holder itself crashed without a goodbye), so hint caches keep
        advertising it -- a future *false positive*, the paper's "stale
        but never wrong" mode.
        """
        holders = self._truth.get(object_id)
        if holders is not None:
            holders.pop(node, None)
            if not holders:
                del self._truth[object_id]
        self.retract_events += 1
        if visible:
            self._schedule(now, "remove", object_id, node)

    def drop_visible(self, object_id: int, node: int) -> None:
        """Immediately forget the visible hint ``object_id -> node``.

        Used after a probe finds the advertised holder dead: the
        requester discards the bad hint locally so it does not keep
        forwarding to a crashed node for the same object.
        """
        existing = self._visible_get(object_id)
        if existing is not None and node in existing:
            existing.discard(node)
            self.corrections += 1
            if not existing:
                self._visible_remove(object_id)

    @property
    def visible_entries(self) -> int:
        """Objects with at least one visible hint (the hint count gauge)."""
        return len(self._visible)

    @property
    def occupancy_bytes(self) -> int:
        """Bytes of visible hint records, at the packed 16-byte record size.

        One record per visible ``(object, holder)`` pair -- the same
        arithmetic the bounded store's set sizing uses -- so telemetry can
        treat a hint store like any other cache occupancy, without a
        per-class accessor (the :class:`repro.cache.policy.ReplacementPolicy`
        protocol's naming).
        """
        return HINT_RECORD_BYTES * sum(
            len(holders) for _, holders in self.visible_items()
        )

    def truth_holders(self, object_id: int) -> dict[int, int]:
        """Ground-truth ``{node: version}`` map for an object (may be empty)."""
        return dict(self._truth.get(object_id, {}))

    # ------------------------------------------------------------------
    # read-only audit accessors (no time advance, no counters, no
    # promotion -- auditing must never perturb what it observes)
    # ------------------------------------------------------------------
    def truth_items(self):
        """Iterate ground truth as ``(object_id, {node: version})`` pairs."""
        return self._truth.items()

    def visible_items(self):
        """Iterate the *applied* visible view as ``(object_id, holders)``.

        Pending (not-yet-visible) events are not applied first -- callers
        see exactly what :meth:`find` would have seen at the last advance.
        """
        if isinstance(self._visible, dict):
            return iter(self._visible.items())
        return self._visible.items()

    @property
    def pending_events(self) -> int:
        """Queued visibility events not yet applied."""
        return len(self._pending)

    @property
    def visible_index(self):
        """The backing visible-view container (dict when unbounded,
        :class:`~repro.cache.setassoc.SetAssociativeCache` when bounded)."""
        return self._visible

    # ------------------------------------------------------------------
    # hint-cache queries
    # ------------------------------------------------------------------
    def find(self, now: float, object_id: int, requester: int) -> HintLookup:
        """What the requester's hint cache reports for ``object_id`` now.

        The requester's own copy never counts (a local miss already
        happened); holders are returned unordered and the architecture
        picks the nearest by its distance function.
        """
        if self._pending:
            self._advance(now)
        visible = self._visible.get(object_id)
        if visible:
            if requester in visible:
                holders = (
                    () if len(visible) == 1
                    else tuple(n for n in visible if n != requester)
                )
            else:
                holders = tuple(visible)
        else:
            holders = ()
        false_negative = False
        if not holders:
            # Another holder exists iff truth has a node other than the
            # requester; node keys are distinct, so >1 entries always do.
            truth = self._truth.get(object_id)
            if truth and (len(truth) > 1 or requester not in truth):
                false_negative = True
                self.false_negatives += 1
        return HintLookup(holders=holders, false_negative=false_negative)

    def record_false_positive(self) -> None:
        """Count a probe that found the advertised copy gone."""
        self.false_positives_recorded += 1

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _schedule(self, now: float, action: str, object_id: int, node: int) -> None:
        if self.propagation_delay_s == 0.0:
            self._apply(action, object_id, node)
            return
        heapq.heappush(
            self._pending,
            (now + self.propagation_delay_s, next(self._seq), action, object_id, node),
        )

    def _advance(self, now: float) -> None:
        while self._pending and self._pending[0][0] <= now:
            _t, _seq, action, object_id, node = heapq.heappop(self._pending)
            self._apply(action, object_id, node)

    def _apply(self, action: str, object_id: int, node: int) -> None:
        visible = self._visible
        existing = visible.get(object_id)
        if action == "add":
            if existing is None:
                if self._visible_is_dict:
                    visible[object_id] = {node}
                else:
                    visible.put(object_id, {node})
            else:
                existing.add(node)
        elif existing is not None:
            existing.discard(node)
            if not existing:
                self._visible_remove(object_id)

    def _visible_get(self, object_id: int) -> set[int] | None:
        return self._visible.get(object_id)

    def _visible_put(self, object_id: int, holders: set[int]) -> None:
        if self._visible_is_dict:
            self._visible[object_id] = holders
        else:
            self._visible.put(object_id, holders)

    def _visible_remove(self, object_id: int) -> None:
        if self._visible_is_dict:
            self._visible.pop(object_id, None)
        else:
            self._visible.remove(object_id)


def nearest_holder(
    holders: tuple[int, ...],
    distance_key: Callable[[int], tuple],
) -> int | None:
    """Pick the holder minimizing ``distance_key`` (None if no holders).

    ``distance_key`` returns a sortable tuple -- architectures use
    ``(distance_class, node_id)`` so selection is deterministic.
    """
    if not holders:
        return None
    return min(holders, key=distance_key)
