"""The 16-byte hint record (paper section 3.2.1).

"Each entry consumes 16 bytes: an 8-byte hash of a URL and an 8-byte
machine identifier (an IP address and port number)."  A special hash value
marks an invalid (empty) slot.

At 16 bytes a hint is ~three orders of magnitude smaller than the ~10 KB
average cached object, which is what lets a 10%-of-disk hint cache index
two orders of magnitude more data than the node stores locally -- the
quantitative heart of the "share data among many caches" principle.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

#: Struct layout: 8-byte URL hash, 4-byte IPv4 address, 4-byte port.
_RECORD_STRUCT = struct.Struct("<QLL")

#: Reserved hash value marking an empty slot (the prototype's "special
#: value ... used to signify an invalid entry").
INVALID_HASH = 0


@dataclass(frozen=True, order=True)
class MachineId:
    """An 8-byte machine identifier: IPv4 address + port.

    In simulation, cache node ``n`` gets the address ``10.0.x.y:3128``
    derived from its index, so machine ids round-trip to node indices.
    """

    address: int  # 32-bit IPv4 address as an int
    port: int

    def __post_init__(self) -> None:
        if not 0 <= self.address < 2**32:
            raise ValueError(f"address must fit in 32 bits, got {self.address}")
        if not 0 <= self.port < 2**16:
            raise ValueError(f"port must fit in 16 bits, got {self.port}")

    @classmethod
    def for_node(cls, node: int, port: int = 3128) -> "MachineId":
        """Deterministic machine id for simulation node ``node``."""
        if node < 0 or node >= 2**16:
            raise ValueError(f"node index must fit in 16 bits, got {node}")
        # 10.0.hi.lo private address space.
        address = (10 << 24) | (node & 0xFFFF)
        return cls(address=address, port=port)

    @property
    def node(self) -> int:
        """Recover the simulation node index from a :meth:`for_node` id."""
        return self.address & 0xFFFF

    def dotted(self) -> str:
        """Dotted-quad rendering, for logs."""
        a = self.address
        return f"{(a >> 24) & 255}.{(a >> 16) & 255}.{(a >> 8) & 255}.{a & 255}:{self.port}"


@dataclass(frozen=True)
class HintRecord:
    """One hint: the nearest known copy of ``url_hash`` is at ``machine``."""

    url_hash: int
    machine: MachineId

    def __post_init__(self) -> None:
        if not 0 <= self.url_hash < 2**64:
            raise ValueError(f"url_hash must fit in 64 bits, got {self.url_hash}")
        if self.url_hash == INVALID_HASH:
            raise ValueError("url_hash 0 is reserved for empty slots")

    def pack(self) -> bytes:
        """Serialize to the 16-byte on-disk / on-wire layout."""
        return _RECORD_STRUCT.pack(self.url_hash, self.machine.address, self.machine.port)

    @classmethod
    def unpack(cls, blob: bytes) -> "HintRecord | None":
        """Deserialize a 16-byte slot; ``None`` for an empty slot."""
        if len(blob) != _RECORD_STRUCT.size:
            raise ValueError(f"hint record must be {_RECORD_STRUCT.size} bytes")
        url_hash, address, port = _RECORD_STRUCT.unpack(blob)
        if url_hash == INVALID_HASH:
            return None
        return cls(url_hash=url_hash, machine=MachineId(address=address, port=port))


#: Size of a packed hint record; pinned to the paper's 16 bytes by tests.
RECORD_BYTES = _RECORD_STRUCT.size
