"""Hint-update wire format and batching (paper section 3.2).

"Periodically, each cache POSTs to its neighbor a message containing ...
the batch of all updates that the cache has seen in the most recent period;
each update consumes 20 bytes: a 4-byte action, an 8-byte object identifier
(part of the MD5 signature of the object's URL), and an 8-byte machine
identifier (an IP address and port number). Nodes randomly choose the
period between updates using a uniform distribution between 0 and 60
seconds to avoid the routing protocol capture effects observed by Floyd
and Jacobson."

This module implements exactly that: a 20-byte record, batch
encode/decode, and an :class:`UpdateBatcher` with the randomized period.
The bandwidth arithmetic the paper does (1.9 updates/s x 20 B = 38 B/s at
the busiest hint cache) is reproduced by ``benchmarks/test_bench_table5``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

from repro.hints.records import MachineId

_UPDATE_STRUCT = struct.Struct("<lQLL")

#: Size of one packed update; pinned to the paper's 20 bytes by tests.
UPDATE_RECORD_BYTES = _UPDATE_STRUCT.size

#: Maximum randomized batching period, seconds.
MAX_UPDATE_PERIOD_S = 60.0


class HintAction(IntEnum):
    """The 4-byte action field of an update."""

    INFORM = 1  # a copy of the object is now stored at `machine`
    INVALIDATE = 2  # the copy at `machine` is no longer present


@dataclass(frozen=True)
class HintUpdate:
    """One 20-byte hint update."""

    action: HintAction
    object_id: int  # 64-bit URL hash
    machine: MachineId

    def pack(self) -> bytes:
        """Serialize to the 20-byte wire layout."""
        return _UPDATE_STRUCT.pack(
            int(self.action), self.object_id, self.machine.address, self.machine.port
        )

    @classmethod
    def unpack(cls, blob: bytes) -> "HintUpdate":
        """Deserialize one 20-byte update."""
        if len(blob) != UPDATE_RECORD_BYTES:
            raise ValueError(f"update must be {UPDATE_RECORD_BYTES} bytes, got {len(blob)}")
        action, object_id, address, port = _UPDATE_STRUCT.unpack(blob)
        return cls(
            action=HintAction(action),
            object_id=object_id,
            machine=MachineId(address=address, port=port),
        )


def encode_updates(updates: list[HintUpdate]) -> bytes:
    """Pack a batch of updates into one POST body."""
    return b"".join(u.pack() for u in updates)


def decode_updates(blob: bytes) -> list[HintUpdate]:
    """Unpack a POST body into its updates."""
    if len(blob) % UPDATE_RECORD_BYTES != 0:
        raise ValueError(
            f"batch length {len(blob)} is not a multiple of {UPDATE_RECORD_BYTES}"
        )
    return [
        HintUpdate.unpack(blob[offset : offset + UPDATE_RECORD_BYTES])
        for offset in range(0, len(blob), UPDATE_RECORD_BYTES)
    ]


@dataclass
class UpdateBatcher:
    """Accumulates updates and flushes them on a randomized period.

    Each flush schedules the next one at ``now + U(0, 60s)`` -- the paper's
    anti-synchronization jitter.  The batcher also keeps the bandwidth
    counters the paper reports (updates/s, bytes/s).

    Args:
        rng: Randomness for the flush period.
        max_period_s: Upper bound of the uniform period (60 s in the paper).
    """

    rng: np.random.Generator
    max_period_s: float = MAX_UPDATE_PERIOD_S
    _pending: list[HintUpdate] = field(default_factory=list)
    _next_flush: float | None = None
    total_updates: int = 0
    total_bytes: int = 0
    total_flushes: int = 0

    def add(self, update: HintUpdate, now: float) -> None:
        """Queue one update at time ``now``."""
        if self._next_flush is None:
            self._next_flush = now + self.rng.uniform(0.0, self.max_period_s)
        self._pending.append(update)

    def pending_count(self) -> int:
        """Number of queued, unflushed updates."""
        return len(self._pending)

    def poll(self, now: float) -> bytes | None:
        """Flush if the period has elapsed; returns the encoded batch.

        Returns ``None`` when there is nothing to send yet.
        """
        if self._next_flush is None or now < self._next_flush or not self._pending:
            return None
        batch = encode_updates(self._pending)
        self.total_updates += len(self._pending)
        self.total_bytes += len(batch)
        self.total_flushes += 1
        self._pending.clear()
        self._next_flush = now + self.rng.uniform(0.0, self.max_period_s)
        return batch

    def bandwidth_bytes_per_s(self, elapsed_s: float) -> float:
        """Average update bandwidth over ``elapsed_s`` seconds."""
        if elapsed_s <= 0:
            raise ValueError("elapsed time must be positive")
        return self.total_bytes / elapsed_s
