"""One proxy's hint module (the prototype's Squid interface, section 3.2).

A :class:`HintNode` owns a packed-array hint cache and answers the three
prototype commands -- *inform*, *invalidate*, *find nearest* -- plus
batch application for updates received from neighbors.  It knows nothing
about the metadata topology; :mod:`repro.hints.cluster` wires nodes
together and moves the batches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hints.hintcache import HintCache
from repro.hints.records import MachineId
from repro.hints.wire import HintAction, HintUpdate


@dataclass
class PendingUpdate:
    """An update queued for forwarding, with its arrival edge.

    ``exclude_neighbor`` is the tree neighbor the update arrived from (or
    ``None`` for locally-originated updates); forwarding skips that edge,
    which on a tree guarantees exactly-once delivery everywhere.
    """

    update: HintUpdate
    exclude_neighbor: int | None = None


class HintNode:
    """A proxy's hint state: local cache + outbound update queue.

    Args:
        index: This node's index in the cluster.
        hint_capacity_bytes: Size of the local hint cache.
        associativity: Hint-cache associativity (4 in the prototype).
    """

    def __init__(
        self, index: int, hint_capacity_bytes: int, associativity: int = 4
    ) -> None:
        self.index = index
        self.machine = MachineId.for_node(index)
        self.cache = HintCache(hint_capacity_bytes, associativity=associativity)
        self.outbox: list[PendingUpdate] = []
        #: url_hash -> simulation time this node first learned a location.
        self.first_learned: dict[int, float] = {}
        self.updates_applied = 0
        self.updates_originated = 0

    # ------------------------------------------------------------------
    # the prototype's three commands
    # ------------------------------------------------------------------
    def inform(self, url_hash: int, now: float) -> None:
        """A copy of the object is now stored locally; advertise it."""
        self.cache.inform(url_hash, self.machine)
        self.first_learned.setdefault(url_hash, now)
        self.updates_originated += 1
        self.outbox.append(
            PendingUpdate(
                HintUpdate(
                    action=HintAction.INFORM,
                    object_id=url_hash,
                    machine=self.machine,
                )
            )
        )

    def invalidate(self, url_hash: int, now: float) -> None:
        """The local copy is gone; advertise the non-presence."""
        self.cache.invalidate(url_hash)
        self.updates_originated += 1
        self.outbox.append(
            PendingUpdate(
                HintUpdate(
                    action=HintAction.INVALIDATE,
                    object_id=url_hash,
                    machine=self.machine,
                )
            )
        )

    def find_nearest(self, url_hash: int) -> MachineId | None:
        """Report the nearest known copy, purely from local state."""
        return self.cache.find_nearest(url_hash)

    # ------------------------------------------------------------------
    # neighbor traffic
    # ------------------------------------------------------------------
    def apply_update(self, update: HintUpdate, from_neighbor: int, now: float) -> None:
        """Apply one received update and queue it for onward forwarding."""
        self.updates_applied += 1
        if update.action is HintAction.INFORM:
            self.cache.inform(update.object_id, update.machine)
            self.first_learned.setdefault(update.object_id, now)
        else:
            existing = self.cache.find_nearest(update.object_id)
            # Only drop the hint if it points at the machine that lost its
            # copy; a hint naming a different holder is still valid.
            if existing is not None and existing == update.machine:
                self.cache.invalidate(update.object_id)
        self.outbox.append(PendingUpdate(update, exclude_neighbor=from_neighbor))

    def drain_outbox(self) -> list[PendingUpdate]:
        """Take every queued update (the flush step)."""
        pending, self.outbox = self.outbox, []
        return pending
