"""Memory-mapped hint store (the prototype's on-disk layout).

Paper section 3.2.1: "our design stores a node's hint cache in a memory
mapped file consisting of an array of small, fixed-sized entries ...
Thus, if a needed hint is not already cached in memory, the system can
locate and read it with a single disk access."

:class:`MmapHintStore` backs a :class:`~repro.hints.hintcache.HintCache`
with an ``mmap`` over a real file, so the fixed-record layout is exercised
against the OS page cache exactly as the prototype exercised it.  The
prototype measured 4.3 microseconds for a warm lookup and 10.8 ms for a
cold one (a disk fault on 1997 hardware); the warm path is reproduced in
``benchmarks/test_bench_hint_lookup.py``.
"""

from __future__ import annotations

import mmap
import os

from repro.hints.hintcache import HINT_RECORD_BYTES, HintCache
from repro.hints.records import MachineId


class MmapHintStore:
    """A hint cache persisted in a memory-mapped file.

    Usable as a context manager::

        with MmapHintStore(path, capacity_bytes=1 << 20) as store:
            store.inform(url_hash, MachineId.for_node(3))
            machine = store.find_nearest(url_hash)

    Reopening the same file recovers the previously written hints -- the
    layout is just the packed 16-byte-record array.
    """

    def __init__(self, path: str | os.PathLike, capacity_bytes: int, associativity: int = 4) -> None:
        self.path = os.fspath(path)
        set_bytes = associativity * HINT_RECORD_BYTES
        n_sets = capacity_bytes // set_bytes
        if n_sets <= 0:
            raise ValueError(f"capacity {capacity_bytes} B holds no {associativity}-way sets")
        self._file_bytes = n_sets * set_bytes
        self._file = open(self.path, "a+b")
        try:
            current = os.fstat(self._file.fileno()).st_size
            if current < self._file_bytes:
                self._file.truncate(self._file_bytes)
            self._mmap = mmap.mmap(self._file.fileno(), self._file_bytes)
        except Exception:
            self._file.close()
            raise
        self._cache = HintCache(
            capacity_bytes=self._file_bytes,
            associativity=associativity,
            buffer=memoryview(self._mmap),
        )
        self._closed = False

    # ------------------------------------------------------------------
    # delegation to the associative cache
    # ------------------------------------------------------------------
    def find_nearest(self, url_hash: int) -> MachineId | None:
        """Look up the nearest known copy of a URL hash."""
        self._check_open()
        return self._cache.find_nearest(url_hash)

    def inform(self, url_hash: int, machine: MachineId):
        """Record a new nearest copy; returns any displaced hint."""
        self._check_open()
        return self._cache.inform(url_hash, machine)

    def invalidate(self, url_hash: int) -> bool:
        """Drop the hint for a URL hash; True if one was present."""
        self._check_open()
        return self._cache.invalidate(url_hash)

    def __len__(self) -> int:
        self._check_open()
        return len(self._cache)

    @property
    def capacity_entries(self) -> int:
        """Maximum number of hints the store can hold."""
        return self._cache.capacity_entries

    # Monotone churn counters, delegated so the mmap-backed store exposes
    # the same telemetry surface as the in-memory cache.
    @property
    def lookups(self) -> int:
        """Find-nearest commands served since construction."""
        return self._cache.lookups

    @property
    def insertions(self) -> int:
        """Inform commands applied since construction."""
        return self._cache.insertions

    @property
    def conflict_evictions(self) -> int:
        """Hints displaced by set conflicts since construction."""
        return self._cache.conflict_evictions

    @property
    def invalidations(self) -> int:
        """Successful invalidate commands since construction."""
        return self._cache.invalidations

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Force dirty pages to the file."""
        self._check_open()
        self._mmap.flush()

    def close(self) -> None:
        """Flush and release the mapping and file handle (idempotent)."""
        if self._closed:
            return
        # Drop the cache's memoryview into the mmap before closing it.
        self._cache._buf.release()
        self._mmap.flush()
        self._mmap.close()
        self._file.close()
        self._closed = True

    def __enter__(self) -> "MmapHintStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("hint store is closed")
