"""The capacity arithmetic of section 3.1.1, as checkable functions.

The paper sizes hint caches with back-of-envelope arithmetic:

* a 16-byte hint is "almost three orders of magnitude smaller than an
  average 10 KB data object";
* "if a cache dedicates 10% of its capacity for hint storage, its hint
  cache will index about two orders of magnitude more data than it can
  store locally.  Even if there were no overlap ... such a directory
  would allow a node to directly access the content of about 63 nearby
  caches";
* "a 500 MB index (10% of a modest 5 GB proxy cache) ... could track the
  location of over 30 million unique objects".

These functions make each sentence a formula, and
``tests/hints/test_arithmetic.py`` pins the published numbers.
"""

from __future__ import annotations

from repro.hints.hintcache import HINT_RECORD_BYTES


def hint_index_entries(hint_bytes: int) -> int:
    """How many objects a hint store of the given size can index."""
    if hint_bytes < 0:
        raise ValueError(f"hint store size must be non-negative, got {hint_bytes}")
    return hint_bytes // HINT_RECORD_BYTES


def index_reach_ratio(mean_object_bytes: float) -> float:
    """Indexed-data bytes per hint-store byte.

    One 16-byte record stands for one cached object of the mean size, so
    the ratio is ``mean_object_size / 16`` -- about 640 for the paper's
    10 KB average object ("almost three orders of magnitude").
    """
    if mean_object_bytes <= 0:
        raise ValueError(f"object size must be positive, got {mean_object_bytes}")
    return mean_object_bytes / HINT_RECORD_BYTES


def caches_indexable(
    disk_bytes: int,
    hint_fraction: float,
    mean_object_bytes: float,
) -> float:
    """How many peer caches a hint slice can fully index, no overlap.

    A cache spends ``hint_fraction`` of its disk on hints and the rest on
    data.  Its hint slice indexes ``slice * reach_ratio`` bytes of remote
    data; dividing by the data capacity of one peer gives the number of
    peers covered -- the paper's "about 63 nearby caches" for a 10% slice
    and 10 KB objects.
    """
    if not 0.0 < hint_fraction < 1.0:
        raise ValueError(f"hint fraction must be in (0, 1), got {hint_fraction}")
    if disk_bytes <= 0:
        raise ValueError(f"disk size must be positive, got {disk_bytes}")
    hint_slice = disk_bytes * hint_fraction
    data_slice = disk_bytes * (1.0 - hint_fraction)
    indexed_bytes = hint_slice * index_reach_ratio(mean_object_bytes)
    return indexed_bytes / data_slice


def update_bandwidth_bytes_per_s(updates_per_s: float) -> float:
    """Wire bandwidth of a hint-update stream (20 B per update).

    The paper's example: the busiest hint cache in the DEC trace sees 1.9
    updates/s = 38 B/s, "about 1% of the bandwidth of a 33.6 Kbit/s modem".
    """
    from repro.hints.wire import UPDATE_RECORD_BYTES

    if updates_per_s < 0:
        raise ValueError(f"update rate must be non-negative, got {updates_per_s}")
    return updates_per_s * UPDATE_RECORD_BYTES
