"""Hierarchical hint propagation with subtree filtering (Table 5).

Paper section 3.1.2: "When a node in the metadata hierarchy learns about a
new copy of data from a child ... it propagates that information to its
parent only if the new copy is the first copy stored in the subtree rooted
at the parent. ... Similarly, when a node learns about a new copy of data
from a parent, it propagates that knowledge to its children if none of its
children had previously informed it of a copy."

:class:`HintPropagationTree` implements that protocol over an explicit
metadata tree and counts the messages each node receives, which is what
Table 5 compares against :class:`CentralizedDirectoryProtocol` (every data
cache sends every update to one directory).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import TopologyError


@dataclass
class _MetadataNode:
    """One node of the metadata tree and its protocol state."""

    index: int
    parent: int | None
    children: list[int] = field(default_factory=list)
    # object -> set of leaf caches known (from below) to hold a copy
    # within this node's subtree.
    subtree_copies: dict[int, set[int]] = field(default_factory=dict)
    # object -> True if the parent told us a copy exists outside our subtree.
    outside_copy: set[int] = field(default_factory=set)
    messages_received: int = 0


class HintPropagationTree:
    """A metadata hierarchy running the paper's filtering protocol.

    The tree is described by a parent vector: ``parents[i]`` is the parent
    of node ``i``, with ``None`` for the root.  Leaves are the nodes with
    no children; each leaf fronts one data cache.

    >>> tree = HintPropagationTree.balanced(branching=8, leaves=64)
    >>> tree.inform(leaf=3, object_id=42)
    >>> tree.root_messages
    1
    """

    def __init__(self, parents: list[int | None]) -> None:
        if not parents:
            raise TopologyError("metadata tree needs at least one node")
        roots = [i for i, p in enumerate(parents) if p is None]
        if len(roots) != 1:
            raise TopologyError(f"tree must have exactly one root, found {len(roots)}")
        self._nodes = [_MetadataNode(index=i, parent=p) for i, p in enumerate(parents)]
        for node in self._nodes:
            if node.parent is not None:
                if not 0 <= node.parent < len(parents):
                    raise TopologyError(f"node {node.index} has bad parent {node.parent}")
                self._nodes[node.parent].children.append(node.index)
        self.root = roots[0]
        self._check_acyclic()
        self.leaves = [n.index for n in self._nodes if not n.children]
        self.total_messages = 0

    @classmethod
    def balanced(cls, branching: int, leaves: int) -> "HintPropagationTree":
        """Build a balanced tree with the given branching over ``leaves``.

        Interior levels are created until a single root covers all leaves;
        with ``branching=8, leaves=64`` this is the paper's 64-L1 / 8-L2 /
        1-L3 metadata hierarchy.
        """
        if branching < 2:
            raise TopologyError(f"branching must be >= 2, got {branching}")
        if leaves < 1:
            raise TopologyError(f"need at least one leaf, got {leaves}")
        # Build bottom-up: level 0 = leaves.
        levels: list[list[int]] = []
        parents: list[int | None] = []
        current = list(range(leaves))
        parents.extend([None] * leaves)  # placeholders, filled below
        levels.append(current)
        next_index = leaves
        while len(current) > 1:
            above: list[int] = []
            for group_start in range(0, len(current), branching):
                group = current[group_start : group_start + branching]
                parents.append(None)  # the new interior node, parent set later
                for child in group:
                    parents[child] = next_index
                above.append(next_index)
                next_index += 1
            current = above
            levels.append(current)
        return cls(parents)

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    @property
    def root_messages(self) -> int:
        """Messages received by the root (Table 5's figure of merit)."""
        return self._nodes[self.root].messages_received

    def messages_at(self, node: int) -> int:
        """Messages received by an arbitrary metadata node."""
        return self._nodes[node].messages_received

    def inform(self, leaf: int, object_id: int) -> None:
        """A leaf's data cache stored a new copy of ``object_id``."""
        self._check_leaf(leaf)
        self._propagate_add(node=leaf, object_id=object_id, holder=leaf, from_child=None)

    def retract(self, leaf: int, object_id: int) -> None:
        """A leaf's data cache dropped its copy of ``object_id``."""
        self._check_leaf(leaf)
        self._propagate_remove(node=leaf, object_id=object_id, holder=leaf)

    def known_in_subtree(self, node: int, object_id: int) -> bool:
        """Does ``node`` know of a copy within its subtree?"""
        return bool(self._nodes[node].subtree_copies.get(object_id))

    def parent_vector(self) -> list[int | None]:
        """The tree as a parent vector (``None`` marks the root).

        Public so other components -- :class:`repro.hints.cluster.HintCluster`,
        the failure-drill example -- can build over the same shape without
        reaching into internals.
        """
        return [node.parent for node in self._nodes]

    def _parent_vector(self) -> list[int | None]:
        """Deprecated private alias of :meth:`parent_vector`."""
        return self.parent_vector()

    # ------------------------------------------------------------------
    # propagation internals
    # ------------------------------------------------------------------
    def _propagate_add(
        self, node: int, object_id: int, holder: int, from_child: int | None
    ) -> None:
        meta = self._nodes[node]
        if from_child is not None:
            meta.messages_received += 1
            self.total_messages += 1
        copies = meta.subtree_copies.setdefault(object_id, set())
        first_in_subtree = not copies
        copies.add(holder)
        if not first_in_subtree:
            # The parent was already told of a copy in this subtree:
            # terminate the upward propagation (the filtering step).
            return
        # First copy below this node: tell the parent, and tell the other
        # children if none of them had previously informed us of a copy
        # (i.e. this is news to their subtrees).
        if meta.parent is not None:
            self._propagate_add(meta.parent, object_id, holder, from_child=node)
        self._push_down(node, object_id, holder, exclude_child=from_child)

    def _push_down(
        self, node: int, object_id: int, holder: int, exclude_child: int | None
    ) -> None:
        """Tell descendant hint caches that a copy now exists at ``holder``."""
        meta = self._nodes[node]
        for child in meta.children:
            if child == exclude_child:
                continue
            child_meta = self._nodes[child]
            child_meta.messages_received += 1
            self.total_messages += 1
            if object_id in child_meta.outside_copy:
                continue  # already knew of an outside copy; stop here
            child_meta.outside_copy.add(object_id)
            self._push_down(child, object_id, holder, exclude_child=None)

    def _propagate_remove(self, node: int, object_id: int, holder: int) -> None:
        meta = self._nodes[node]
        copies = meta.subtree_copies.get(object_id)
        if copies is None or holder not in copies:
            return
        copies.discard(holder)
        if copies:
            return  # subtree still has a copy; the parent need not know
        del meta.subtree_copies[object_id]
        if meta.parent is not None:
            parent = self._nodes[meta.parent]
            parent.messages_received += 1
            self.total_messages += 1
            self._propagate_remove(meta.parent, object_id, holder)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _check_leaf(self, leaf: int) -> None:
        if not 0 <= leaf < len(self._nodes):
            raise TopologyError(f"no such node {leaf}")
        if self._nodes[leaf].children:
            raise TopologyError(f"node {leaf} is not a leaf")

    def _check_acyclic(self) -> None:
        for node in self._nodes:
            seen = set()
            cursor: int | None = node.index
            while cursor is not None:
                if cursor in seen:
                    raise TopologyError(f"cycle through node {cursor}")
                seen.add(cursor)
                cursor = self._nodes[cursor].parent


class CentralizedDirectoryProtocol:
    """The strawman Table 5 compares against: one directory hears everything."""

    def __init__(self) -> None:
        self.messages_received = 0

    def inform(self, leaf: int, object_id: int) -> None:
        """Every new copy is reported to the central directory."""
        self.messages_received += 1

    def retract(self, leaf: int, object_id: int) -> None:
        """Every drop is reported to the central directory."""
        self.messages_received += 1
