"""Named experiment configurations.

The paper's evaluation fixes one system shape (64 L1 proxies of 256
clients each, 8 L1s per L2, one L3 root; 5 GB data caches or 4.5 GB + 500
MB of hints in the space-constrained runs) and sweeps traces and cost
models across it.  :class:`ExperimentConfig` bundles those choices; the
default is a scaled-down shape that keeps the 64/8/1 proxy structure but
fewer clients per proxy, so experiments complete on one machine.  Every
figure module accepts a config, so full-scale runs are a parameter change.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.units import GB, MB
from repro.hierarchy.topology import HierarchyTopology
from repro.traces.profiles import WorkloadProfile, profile_by_name


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything an experiment needs besides the trace itself.

    Attributes:
        topology: Proxy grouping (defaults keep the paper's 64/8/1 shape).
        seed: Root seed for trace generation and stochastic components.
        trace_scale: Fraction of the full-scale trace to generate.
        l1_cache_bytes: Space-constrained data-cache size per node (the
            paper: 5 GB; scaled default matches the scaled traffic).
        hint_data_cache_bytes: Data-cache size for hint-architecture L1
            nodes in the space-constrained runs (paper: 4.5 GB -- the
            remaining 500 MB holds hints).
        hint_store_bytes: Hint store per node (paper: 500 MB).
    """

    topology: HierarchyTopology = HierarchyTopology(
        clients_per_l1=4, l1_per_l2=8, n_l2=8
    )
    seed: int = 42
    trace_scale: float = 0.004
    l1_cache_bytes: int = 24 * MB
    hint_data_cache_bytes: int = int(21.6 * MB)
    hint_store_bytes: int = int(2.4 * MB)

    def profile(self, name: str) -> WorkloadProfile:
        """The named workload profile scaled for this config.

        The client population is kept at least as large as the topology's
        coverage so every L1 proxy (and hence every distance class) sees
        traffic -- with fewer clients the whole trace would collapse into
        one L2 group and L3-distance transfers could never occur.
        """
        return profile_by_name(name).scaled(
            self.trace_scale, min_clients=self.topology.n_clients_covered
        )

    def with_scale(self, trace_scale: float) -> "ExperimentConfig":
        """Copy with a different trace scale (capacities scale along)."""
        ratio = trace_scale / self.trace_scale
        return replace(
            self,
            trace_scale=trace_scale,
            l1_cache_bytes=max(1 * MB, int(self.l1_cache_bytes * ratio)),
            hint_data_cache_bytes=max(1 * MB, int(self.hint_data_cache_bytes * ratio)),
            hint_store_bytes=max(256 * 1024, int(self.hint_store_bytes * ratio)),
        )

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """The paper's full-scale parameters (hours of CPU; documented)."""
        return cls(
            topology=HierarchyTopology(clients_per_l1=256, l1_per_l2=8, n_l2=8),
            trace_scale=1.0,
            l1_cache_bytes=5 * GB,
            hint_data_cache_bytes=int(4.5 * GB),
            hint_store_bytes=500 * MB,
        )


def default_config() -> ExperimentConfig:
    """The scaled configuration used by tests, examples, and benches."""
    return ExperimentConfig()
