"""Replication across seeds: are the headline numbers workload-luck?

The paper reports single-trace results (its traces are fixed recordings).
Synthetic workloads allow a stronger statement: regenerate the trace under
several seeds and report the spread of any derived statistic.  The
``seed_sensitivity`` experiment uses this to show that the Table 6
speedups are stable properties of the workload *profile*, not accidents of
one random draw.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.runner.trace_cache import cached_trace
from repro.sim.config import ExperimentConfig
from repro.traces.records import Trace


@dataclass(frozen=True)
class ReplicationSummary:
    """Mean / spread of one statistic across seed replications."""

    statistic: str
    values: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n if self.n else 0.0

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1)."""
        if self.n < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(
            sum((v - mean) ** 2 for v in self.values) / (self.n - 1)
        )

    @property
    def minimum(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    @property
    def relative_spread(self) -> float:
        """(max - min) / mean -- the headline stability figure."""
        mean = self.mean
        if mean == 0:
            return 0.0
        return (self.maximum - self.minimum) / abs(mean)

    def as_row(self) -> dict[str, float | str]:
        """Flat dict for table rendering."""
        return {
            "statistic": self.statistic,
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "relative_spread": self.relative_spread,
        }


def replicate(
    config: ExperimentConfig,
    profile_name: str,
    statistic: Callable[[Trace], float],
    *,
    statistic_name: str,
    n_seeds: int = 5,
) -> ReplicationSummary:
    """Evaluate ``statistic`` on ``n_seeds`` independently-seeded traces.

    Seeds derive from the config's root seed, so a replication study is
    itself reproducible.
    """
    if n_seeds < 1:
        raise ValueError(f"need at least one seed, got {n_seeds}")
    profile = config.profile(profile_name)
    values = []
    for replica in range(n_seeds):
        trace = cached_trace(profile, config.seed * 1000 + replica)
        values.append(float(statistic(trace)))
    return ReplicationSummary(statistic=statistic_name, values=tuple(values))
