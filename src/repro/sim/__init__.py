"""Trace-driven simulation engine and metrics.

* :func:`repro.sim.engine.run_simulation` -- drive one architecture over
  one trace, with warmup handling and the paper's request-filtering rules.
* :class:`repro.sim.metrics.SimMetrics` -- response-time and hit-ratio
  aggregation per access point.
* :mod:`repro.sim.config` -- named experiment configurations (topology,
  capacities, cost model) shared by the figure/table reproductions.
"""

from repro.sim.config import ExperimentConfig, default_config
from repro.sim.engine import run_simulation
from repro.sim.metrics import LatencyHistogram, SimMetrics
from repro.sim.queueing_sim import QueueingReplay, compression_for_target_load

__all__ = [
    "ExperimentConfig",
    "LatencyHistogram",
    "QueueingReplay",
    "SimMetrics",
    "compression_for_target_load",
    "default_config",
    "run_simulation",
]
