"""Columnar batch engine: the vectorized twin of :mod:`repro.sim.engine`.

The reference engine materializes one ``Request`` tuple, one ``Journey``,
several ``Step`` tuples, and one ``AccessResult`` per trace record, then
folds each into ``SimMetrics`` a counter at a time.  At ~30-50k req/s that
object churn is the simulation's entire cost.  This module keeps the trace
columnar end-to-end: requests live as NumPy arrays (time, client, object,
size, version, cachability), classification/warmup masking/accounting are
vectorized per batch, and per-request Python survives only for the state
transitions that genuinely need it -- LRU lookups/inserts (evictions), hint
directory traffic, and (by falling back to the reference loop) fault
windows.

Parity contract
---------------
A fast-engine run produces **byte-identical** :class:`SimMetrics` to the
reference engine on the same trace and a freshly built architecture:

* identical integer counters, by construction (same cache/directory method
  calls in the same order drive the same hit/miss/pathology outcomes);
* identical floats: every reference accumulation is a left-to-right
  ``total += value`` chain, which :func:`_sequential_sum` replays exactly
  via ``np.cumsum`` (``ufunc.accumulate`` is defined as the running sum,
  ``r[i] = r[i-1] + a[i]``), per-request times are slot sums ``(s0 + s1) +
  s2`` with unused slots padded by ``+0.0`` (exact identity for the finite
  non-negative costs involved), and batch cost pricing uses the cost
  models' ``*_ms_batch`` methods, which replay the scalar arithmetic
  elementwise;
* identical histograms: :meth:`LatencyHistogram.bulk_record` routes every
  distinct value through the same scalar binning formula as ``record``.

Journeys and telemetry are *decoders* over the batch's column store: a
detached run (no sink, no telemetry) pays one pointer check per batch,
while an attached run reconstructs journeys / feeds
``RunTelemetry.observe_values`` from the already-priced columns.

Residual dispatch
-----------------
Fault plans and audit hooks are inherently per-request (fault windows cut
batches at event boundaries; audit checkpoints walk live state between
requests), so runs carrying either are dispatched to the reference loop --
the ISSUE's sanctioned residual.  Architectures without a vectorized
kernel fall back likewise under ``engine="auto"`` and raise under
``engine="fast"``.

Adding an architecture = writing one ``_Kernel`` subclass: a per-batch
state loop emitting (pattern, point, aux, flags) small-int columns, a
``STEP_TABLE`` mapping patterns to journey shapes, and a cost-pricing
method.  The driver (batching, warmup masking, metrics folding, telemetry
bin splitting, journey decode) is architecture-independent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.cache.lru import LookupResult
from repro.netmodel.model import AccessPoint
from repro.sim.metrics import SimMetrics, StepAggregate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hierarchy.base import AccessResult, Architecture
    from repro.obs.sink import JourneySink
    from repro.obs.telemetry import RunTelemetry
    from repro.traces.records import Trace

#: Default batch size; parity is batch-size-independent (tests sweep it).
DEFAULT_BATCH_SIZE = 4096

#: Result-flag bits (column ``flags``), decoded into SimMetrics counters
#: and telemetry observations.
FLAG_REMOTE_HIT = 1
FLAG_FALSE_POSITIVE = 2
FLAG_FALSE_NEGATIVE = 4
FLAG_SUBOPTIMAL = 8


def _sequential_sum(initial: float, values: np.ndarray) -> float:
    """``((initial + v0) + v1) + ...`` bit-for-bit, without a Python loop.

    ``np.cumsum`` is ``np.add.accumulate``, whose contract is the strict
    running sum -- the same left-to-right IEEE additions the reference
    engine's ``total += value`` chain performs (pinned by a unit test).
    """
    buffer = np.empty(len(values) + 1, dtype=np.float64)
    buffer[0] = initial
    buffer[1:] = values
    return float(np.cumsum(buffer)[-1])


class _BatchResult:
    """Column store for one processed batch (small ints + slot costs)."""

    __slots__ = ("pattern", "point", "aux", "flags", "slot_costs", "time_ms")

    def __init__(self, pattern, point, aux, flags, slot_costs):
        self.pattern = pattern  # kernel-defined path shape per row
        self.point = point  # AccessPoint int per row
        self.aux = aux  # kernel-defined (target node / probe point)
        self.flags = flags  # FLAG_* bitmask per row
        self.slot_costs = slot_costs  # list of float64 arrays, journey order
        # Per-request charged time: left-to-right slot sum with zero-padded
        # unused slots, elementwise-identical to the journey's step sum.
        time_ms = slot_costs[0]
        for costs in slot_costs[1:]:
            time_ms = time_ms + costs
        self.time_ms = time_ms


class _Kernel:
    """One architecture's batchable hot path (state loop + pricing)."""

    #: pattern -> ((slot, StepKind.value, wasted), ...) in journey order.
    STEP_TABLE: dict[int, tuple[tuple[int, str, bool], ...]] = {}

    def __init__(self, architecture: "Architecture", columns) -> None:
        self.arch = architecture
        self.columns = columns

    def process_batch(self, idx: np.ndarray) -> _BatchResult:
        raise NotImplementedError

    def result_for(self, batch: _BatchResult, row: int) -> "AccessResult":
        raise NotImplementedError

    def _kind_table(self):
        """kind -> [(pattern, slot, wasted), ...], derived from STEP_TABLE."""
        table: dict[str, list[tuple[int, int, bool]]] = {}
        for pattern, slots in self.STEP_TABLE.items():
            for slot, kind, wasted in slots:
                table.setdefault(kind, []).append((pattern, slot, wasted))
        return table


class HierarchyKernel(_Kernel):
    """Vectorized healthy path of :class:`DataHierarchy`.

    Pattern ids double as AccessPoint ints (the hierarchy's single journey
    step is fully determined by the deepest level reached).
    """

    STEP_TABLE = {
        1: ((0, "local_lookup", False),),
        2: ((0, "level_traversal", False),),
        3: ((0, "level_traversal", False),),
        4: ((0, "origin_fetch", False),),
    }

    def __init__(self, architecture, columns) -> None:
        super().__init__(architecture, columns)
        topology = architecture.topology
        self._l1_all = topology.l1_of_clients(columns.client)
        self._l2_all = self._l1_all // topology.l1_per_l2
        # Unbounded caches never evict, so LRU recency order is
        # unobservable on the healthy path: a pure HIT's only state effect
        # (``move_to_end``) can be skipped and the lookup becomes one dict
        # probe.  STALE and MISS rows still take the real method calls.
        self._l1_entries = [
            cache._entries if cache.capacity_bytes is None else None
            for cache in architecture.l1_caches
        ]

    def process_batch(self, idx: np.ndarray) -> _BatchResult:
        columns = self.columns
        oids = columns.object[idx].tolist()
        versions = columns.version[idx].tolist()
        sizes_list = columns.size[idx].tolist()
        l1_list = self._l1_all[idx].tolist()
        l2_list = self._l2_all[idx].tolist()

        arch = self.arch
        l1_caches = arch.l1_caches
        l1_entries = self._l1_entries
        l2_caches = arch.l2_caches
        l3 = arch.l3_cache
        l3_lookup = l3.lookup
        l3_insert = l3.insert
        hit = LookupResult.HIT
        pattern_list = []
        append = pattern_list.append
        for oid, version, size, l1i, l2i in zip(
            oids, versions, sizes_list, l1_list, l2_list
        ):
            entries = l1_entries[l1i]
            if entries is not None:
                entry = entries.get(oid)
                if entry is not None and entry.version >= version:
                    append(1)
                    continue
                l1 = l1_caches[l1i]
                if entry is not None:
                    l1.lookup(oid, version)  # STALE: invalidates the copy
            else:
                l1 = l1_caches[l1i]
                if l1.lookup(oid, version) is hit:
                    append(1)
                    continue
            l2 = l2_caches[l2i]
            if l2.lookup(oid, version) is hit:
                l1.insert(oid, size, version)
                append(2)
                continue
            if l3_lookup(oid, version) is hit:
                l2.insert(oid, size, version)
                l1.insert(oid, size, version)
                append(3)
                continue
            l3_insert(oid, size, version)
            l2.insert(oid, size, version)
            l1.insert(oid, size, version)
            append(4)

        pattern = np.array(pattern_list, dtype=np.int64)
        sizes = columns.size[idx]
        cost = arch.cost_model
        s0 = np.empty(len(pattern), dtype=np.float64)
        for point in AccessPoint:
            rows = pattern == int(point)
            if rows.any():
                s0[rows] = cost.hierarchical_ms_batch(point, sizes[rows])
        flags = np.where(
            (pattern == 2) | (pattern == 3), FLAG_REMOTE_HIT, 0
        ).astype(np.int64)
        # aux carries the requester's L1 index (the L2 parent is derived).
        aux = self._l1_all[idx]
        return _BatchResult(pattern, pattern, aux, flags, [s0])

    def result_for(self, batch: _BatchResult, row: int) -> "AccessResult":
        from repro.obs.journey import Journey

        pattern = int(batch.pattern[row])
        cost = float(batch.slot_costs[0][row])
        l1_index = int(batch.aux[row])
        journey = Journey()
        if pattern == 1:
            journey.local_lookup(cost, target=f"l1:{l1_index}")
            return journey.result(AccessPoint.L1, hit=True)
        if pattern == 2:
            l2_index = l1_index // self.arch.topology.l1_per_l2
            journey.level_traversal(cost, target=f"l2:{l2_index}")
            return journey.result(AccessPoint.L2, hit=True, remote_hit=True)
        if pattern == 3:
            journey.level_traversal(cost, target="l3")
            return journey.result(AccessPoint.L3, hit=True, remote_hit=True)
        journey.origin_fetch(cost)
        return journey.result(AccessPoint.SERVER, hit=False)


class HintKernel(_Kernel):
    """Vectorized healthy path of plain :class:`HintHierarchy`.

    Plain = no push policy and no ideal-push accounting; under those the
    reference path's stale-holder snapshot and push-mark consumption are
    provably free of state effects, so the loop below calls exactly the
    mutating operations the reference calls, in the same order: L1 lookup,
    directory find, nearest-holder probe, false-positive recording,
    push-stats clock/byte accounting, demand store + inform.
    """

    P_LOCAL = 1
    P_REMOTE = 2
    P_MISS = 3
    P_MISS_FP = 4
    P_MISS_FN = 5

    STEP_TABLE = {
        1: ((0, "local_lookup", False),),
        2: ((0, "hint_lookup", False), (1, "transfer", False)),
        3: ((0, "hint_lookup", False), (1, "origin_fetch", False)),
        4: (
            (0, "hint_lookup", False),
            (1, "peer_probe", True),
            (2, "origin_fetch", False),
        ),
        5: ((0, "hint_lookup", False), (1, "origin_fetch", False)),
    }

    def __init__(self, architecture, columns) -> None:
        super().__init__(architecture, columns)
        topology = architecture.topology
        self._l1_all = topology.l1_of_clients(columns.client)
        self._dist_rows = topology.distance_matrix().tolist()
        # Same unbounded-cache shortcut as the hierarchy kernel: a pure
        # local HIT mutates nothing observable, so it needs neither the
        # LRU promotion nor the ``arch._now`` stamp (which only eviction
        # retractions read).
        self._l1_entries = [
            cache._entries if cache.capacity_bytes is None else None
            for cache in architecture.l1_caches
        ]

    def process_batch(self, idx: np.ndarray) -> _BatchResult:
        columns = self.columns
        times = columns.time[idx].tolist()
        oids = columns.object[idx].tolist()
        versions = columns.version[idx].tolist()
        sizes_list = columns.size[idx].tolist()
        l1_list = self._l1_all[idx].tolist()

        arch = self.arch
        caches = arch.l1_caches
        l1_entries = self._l1_entries
        directory = arch.directory
        find = directory.find
        record_fp = directory.record_false_positive
        inform = directory.inform
        truth = directory._truth
        push_stats = arch.push_stats
        note_time = push_stats.note_time
        dist_rows = self._dist_rows
        hit = LookupResult.HIT

        # Local hits append only a pattern; holder/point/flag for them are
        # the requester's L1 / AccessPoint.L1 / 0, scattered in afterwards.
        pattern_list = []
        miss_row_list = []  # batch-local row index of each non-local row
        holder_list = []
        aux_point_list = []
        flag_list = []
        p_append = pattern_list.append
        m_append = miss_row_list.append
        h_append = holder_list.append
        a_append = aux_point_list.append
        f_append = flag_list.append
        row = -1
        for t, oid, version, size, l1i in zip(
            times, oids, versions, sizes_list, l1_list
        ):
            row += 1
            entries = l1_entries[l1i]
            if entries is not None:
                entry = entries.get(oid)
                if entry is not None and entry.version >= version:
                    p_append(1)
                    continue
                arch._now = t
                cache = caches[l1i]
                if entry is not None:
                    cache.lookup(oid, version)  # STALE: invalidate + retract
            else:
                arch._now = t
                cache = caches[l1i]
                if cache.lookup(oid, version) is hit:
                    p_append(1)
                    continue
            m_append(row)
            lookup = find(t, oid, l1i)
            holders = lookup.holders
            if holders:
                drow = dist_rows[l1i]
                holder = min(holders, key=lambda h: (drow[h], h))
                point = drow[holder]
                if caches[holder].lookup(oid, version) is hit:
                    held_map = truth.get(oid)
                    suboptimal = False
                    if held_map:
                        for node, held in held_map.items():
                            if (
                                held >= version
                                and node != l1i
                                and drow[node] < point
                            ):
                                suboptimal = True
                                break
                    note_time(t)
                    push_stats.demand_bytes += size
                    cache.insert(oid, size, version)
                    inform(t, oid, l1i, version)
                    p_append(2)
                    h_append(holder)
                    a_append(point)
                    f_append(
                        FLAG_REMOTE_HIT | FLAG_SUBOPTIMAL
                        if suboptimal
                        else FLAG_REMOTE_HIT
                    )
                    continue
                record_fp()
                note_time(t)
                push_stats.demand_bytes += size
                cache.insert(oid, size, version)
                inform(t, oid, l1i, version)
                p_append(4)
                h_append(holder)
                a_append(point)
                f_append(FLAG_FALSE_POSITIVE)
                continue
            note_time(t)
            push_stats.demand_bytes += size
            cache.insert(oid, size, version)
            inform(t, oid, l1i, version)
            if lookup.false_negative:
                p_append(5)
                f_append(FLAG_FALSE_NEGATIVE)
            else:
                p_append(3)
                f_append(0)
            h_append(-1)
            a_append(4)

        pattern = np.array(pattern_list, dtype=np.int64)
        n = len(pattern)
        miss_rows = np.array(miss_row_list, dtype=np.int64)
        aux_point = np.ones(n, dtype=np.int64)
        if miss_rows.size:
            aux_point[miss_rows] = np.array(aux_point_list, dtype=np.int64)
        sizes = columns.size[idx]
        cost = arch.cost_model
        hint_ms = cost.hint_lookup_ms()

        s0 = np.zeros(n, dtype=np.float64)
        s1 = np.zeros(n, dtype=np.float64)
        s2 = np.zeros(n, dtype=np.float64)
        local_rows = pattern == 1
        if local_rows.any():
            s0[local_rows] = cost.via_l1_ms_batch(
                AccessPoint.L1, sizes[local_rows]
            )
        nonlocal_rows = ~local_rows
        s0[nonlocal_rows] = hint_ms
        remote_rows = pattern == 2
        for point in (AccessPoint.L2, AccessPoint.L3):
            rows = remote_rows & (aux_point == int(point))
            if rows.any():
                s1[rows] = cost.via_l1_ms_batch(point, sizes[rows])
        plain_miss = (pattern == 3) | (pattern == 5)
        if plain_miss.any():
            s1[plain_miss] = cost.via_l1_ms_batch(
                AccessPoint.SERVER, sizes[plain_miss]
            )
        fp_rows = pattern == 4
        if fp_rows.any():
            for point in (AccessPoint.L2, AccessPoint.L3):
                rows = fp_rows & (aux_point == int(point))
                if rows.any():
                    s1[rows] = cost.probe_ms(point)
            s2[fp_rows] = cost.via_l1_ms_batch(AccessPoint.SERVER, sizes[fp_rows])

        result_point = np.where(
            pattern == 1, 1, np.where(remote_rows, aux_point, 4)
        )
        flags = np.zeros(n, dtype=np.int64)
        # aux carries the holder / local proxy index for journey targets
        # (the transfer point of a remote hit is result_point itself).
        holder = self._l1_all[idx].copy()
        if miss_rows.size:
            flags[miss_rows] = np.array(flag_list, dtype=np.int64)
            holder[miss_rows] = np.array(holder_list, dtype=np.int64)
        return _BatchResult(pattern, result_point, holder, flags, [s0, s1, s2])

    def result_for(self, batch: _BatchResult, row: int) -> "AccessResult":
        from repro.obs.journey import Journey

        pattern = int(batch.pattern[row])
        s0 = float(batch.slot_costs[0][row])
        s1 = float(batch.slot_costs[1][row])
        s2 = float(batch.slot_costs[2][row])
        holder = int(batch.aux[row])
        flags = int(batch.flags[row])
        journey = Journey()
        if pattern == 1:
            journey.local_lookup(s0, target=f"l1:{holder}")
            return journey.result(AccessPoint.L1, hit=True)
        if pattern == 2:
            journey.hint_lookup(s0, target=f"l1:{holder}")
            journey.transfer(s1, target=f"l1:{holder}")
            if flags & FLAG_SUBOPTIMAL:
                journey.mark_suboptimal()
            return journey.result(
                AccessPoint(int(batch.point[row])), hit=True, remote_hit=True
            )
        journey.hint_lookup(s0)
        if pattern == 4:
            journey.peer_probe(s1, target=f"l1:{holder}", wasted=True)
            journey.mark_false_positive()
            journey.origin_fetch(s2)
        else:
            if pattern == 5:
                journey.mark_false_negative()
            journey.origin_fetch(s1)
        return journey.result(AccessPoint.SERVER, hit=False)


def kernel_class_for(architecture: "Architecture"):
    """The vectorized kernel for this architecture, or ``None``.

    Exact-type matches only: subclasses may override ``process`` and must
    not silently inherit a kernel that bypasses their behavior.
    """
    from repro.hierarchy.data_hierarchy import DataHierarchy
    from repro.hierarchy.hint_hierarchy import HintHierarchy

    if type(architecture) is DataHierarchy:
        return HierarchyKernel
    if (
        type(architecture) is HintHierarchy
        and architecture.push_policy is None
        and not architecture.charge_remote_as_l1
    ):
        return HintKernel
    return None


def fast_unsupported_reason(architecture: "Architecture") -> str | None:
    """Why the vectorized path cannot drive this architecture (or None)."""
    if kernel_class_for(architecture) is None:
        return (
            f"no vectorized kernel for architecture {architecture.name!r} "
            f"({type(architecture).__name__}); supported: plain hierarchy "
            "and plain hints"
        )
    return None


def run_fast_simulation(
    trace: "Trace",
    architecture: "Architecture",
    *,
    warmup_s: float | None = None,
    include_uncachable: bool = False,
    journey_sink: "JourneySink | None" = None,
    telemetry: "RunTelemetry | None" = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> SimMetrics:
    """Columnar twin of :func:`repro.sim.engine.run_simulation`.

    Accepts only configurations the vectorized kernels cover (the engine's
    dispatcher routes fault plans and audit hooks to the reference loop).
    Returns byte-identical :class:`SimMetrics`.
    """
    if batch_size < 1:
        raise ValueError(f"batch size must be positive, got {batch_size}")
    kernel_cls = kernel_class_for(architecture)
    if kernel_cls is None:
        raise ValueError(fast_unsupported_reason(architecture))
    if architecture.faults is not None or architecture.audit is not None:
        raise ValueError(
            "fast engine handles healthy, un-audited runs; fault plans and "
            "audit hooks dispatch to the reference loop"
        )
    boundary = trace.warmup if warmup_s is None else warmup_s
    metrics = SimMetrics(
        architecture=architecture.name,
        cost_model=architecture.cost_model.name,
    )
    columns = trace.columns()
    n = len(columns)
    if telemetry is not None:
        telemetry.begin(architecture)

    time_col = columns.time
    error = columns.error
    uncachable = (~columns.cacheable) & (~error)
    if include_uncachable:
        metrics.included_error = int(error.sum())
        metrics.included_uncachable = int(uncachable.sum())
        process = np.ones(n, dtype=bool)
    else:
        metrics.skipped_error = int(error.sum())
        metrics.skipped_uncachable = int(uncachable.sum())
        process = ~(error | uncachable)
    measured_mask = process & (time_col >= boundary)
    processed_total = int(process.sum())
    metrics.warmup_requests = processed_total - int(measured_mask.sum())

    # Batch spans: fixed-size chunks, additionally split at telemetry bin
    # edges so each span's clock advance (and therefore every bin-close
    # snapshot) lands exactly where the per-request engine would put it.
    edges = set(range(0, n, batch_size))
    if telemetry is not None and n:
        bins = (time_col // telemetry.bin_s).astype(np.int64)
        edges.update((np.flatnonzero(np.diff(bins) != 0) + 1).tolist())
    span_edges = sorted(edges) + [n]

    kernel = kernel_cls(architecture, columns)
    kind_table = kernel._kind_table()
    sizes_col = columns.size
    requests = trace.requests if journey_sink is not None else None

    for start, stop in zip(span_edges, span_edges[1:]):
        if start >= stop:
            continue
        if telemetry is not None:
            telemetry.advance(float(time_col[start]))
        idx = np.flatnonzero(process[start:stop]) + start
        if idx.size == 0:
            continue
        batch = kernel.process_batch(idx)
        span_measured = measured_mask[idx]
        measured_before = metrics.measured_requests
        _fold_measured(
            metrics,
            batch,
            span_measured,
            sizes_col[idx],
            kernel.STEP_TABLE,
            kind_table,
        )
        if telemetry is not None:
            _observe_span(telemetry, batch, span_measured, sizes_col[idx])
        if journey_sink is not None:
            for offset, row in enumerate(np.flatnonzero(span_measured).tolist()):
                result = kernel.result_for(batch, row)
                journey_sink.emit(
                    measured_before + offset, requests[int(idx[row])], result
                )

    architecture.processed_requests += processed_total
    if telemetry is not None:
        telemetry.finish(trace.duration)
    metrics.validate(expected_requests=n)
    return metrics


def _fold_measured(
    metrics: SimMetrics,
    batch: _BatchResult,
    measured: np.ndarray,
    sizes: np.ndarray,
    step_table,
    kind_table,
) -> None:
    """Fold one batch's measured rows into SimMetrics, bit-identically."""
    count = int(measured.sum())
    if count == 0:
        return
    times = batch.time_ms[measured]
    points = batch.point[measured]
    flags = batch.flags[measured]
    msizes = sizes[measured]

    metrics.measured_requests += count
    metrics.total_ms = _sequential_sum(metrics.total_ms, times)
    metrics.latency.bulk_record(times)
    point_counts = np.bincount(points, minlength=5)
    for point in AccessPoint:
        hits = int(point_counts[int(point)])
        if hits:
            metrics.requests_by_point[point] += hits
            metrics.bytes_by_point[point] += int(msizes[points == int(point)].sum())
    metrics.remote_hits += int((flags & FLAG_REMOTE_HIT != 0).sum())
    metrics.false_positives += int((flags & FLAG_FALSE_POSITIVE != 0).sum())
    metrics.false_negatives += int((flags & FLAG_FALSE_NEGATIVE != 0).sum())
    metrics.suboptimal_positives += int((flags & FLAG_SUBOPTIMAL != 0).sum())
    metrics.journeyed_requests += count

    # Per-kind step fold.  Aggregates are created in first-seen order
    # (row-major, then slot order within a row) so rendered decomposition
    # tables iterate kinds exactly as the reference engine built them.
    patterns = batch.pattern[measured]
    steps = metrics.steps
    first_seen: dict[str, int] = {}
    for pattern, slots in step_table.items():
        rows = np.flatnonzero(patterns == pattern)
        if rows.size == 0:
            continue
        ordinal_base = int(rows[0]) * 4
        for slot, kind, _wasted in slots:
            if kind not in steps:
                ordinal = ordinal_base + slot
                if kind not in first_seen or ordinal < first_seen[kind]:
                    first_seen[kind] = ordinal
    for kind, _ in sorted(first_seen.items(), key=lambda item: item[1]):
        steps[kind] = StepAggregate(kind=kind)

    n_rows = len(patterns)
    measured_slot_costs = [costs[measured] for costs in batch.slot_costs]
    for kind, occurrences in kind_table.items():
        kind_mask = np.zeros(n_rows, dtype=bool)
        kind_cost = np.empty(n_rows, dtype=np.float64)
        wasted_mask = np.zeros(n_rows, dtype=bool)
        for pattern, slot, wasted in occurrences:
            rows = patterns == pattern
            if not rows.any():
                continue
            kind_mask |= rows
            kind_cost[rows] = measured_slot_costs[slot][rows]
            if wasted:
                wasted_mask |= rows
        if not kind_mask.any():
            continue
        costs = kind_cost[kind_mask]
        agg = steps[kind]
        agg.count += len(costs)
        agg.total_ms = _sequential_sum(agg.total_ms, costs)
        agg.wasted += int(wasted_mask.sum())
        agg.latency.bulk_record(costs)
        # agg.fault_ms stays 0.0: healthy steps charge fault_ms == 0.0 and
        # x += 0.0 is the identity for the fault ledger's non-negatives.


def _observe_span(
    telemetry: "RunTelemetry",
    batch: _BatchResult,
    span_measured: np.ndarray,
    sizes: np.ndarray,
) -> None:
    """Decode one span's rows into telemetry observations, in row order."""
    observe = telemetry.observe_values
    points = batch.point.tolist()
    times = batch.time_ms.tolist()
    flags = batch.flags.tolist()
    size_list = sizes.tolist()
    measured_list = span_measured.tolist()
    for point, time_ms, flag, size, measured in zip(
        points, times, flags, size_list, measured_list
    ):
        observe(
            point=point,
            size=size,
            time_ms=time_ms,
            remote_hit=bool(flag & FLAG_REMOTE_HIT),
            false_positive=bool(flag & FLAG_FALSE_POSITIVE),
            false_negative=bool(flag & FLAG_FALSE_NEGATIVE),
            suboptimal_positive=bool(flag & FLAG_SUBOPTIMAL),
            measured=measured,
        )
