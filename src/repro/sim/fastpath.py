"""Columnar batch engine: the vectorized twin of :mod:`repro.sim.engine`.

The reference engine materializes one ``Request`` tuple, one ``Journey``,
several ``Step`` tuples, and one ``AccessResult`` per trace record, then
folds each into ``SimMetrics`` a counter at a time.  At ~30-50k req/s that
object churn is the simulation's entire cost.  This module keeps the trace
columnar end-to-end: requests live as NumPy arrays (time, client, object,
size, version, cachability), classification/warmup masking/accounting are
vectorized per batch, and per-request Python survives only for the state
transitions that genuinely need it -- LRU lookups/inserts (evictions), hint
directory traffic, push-policy RNG draws, and active fault windows.

Parity contract
---------------
A fast-engine run produces **byte-identical** :class:`SimMetrics` to the
reference engine on the same trace and a freshly built architecture:

* identical integer counters, by construction (same cache/directory method
  calls in the same order drive the same hit/miss/pathology outcomes);
* identical floats: every reference accumulation is a left-to-right
  ``total += value`` chain, which :func:`_sequential_sum` replays exactly
  via ``np.cumsum`` (``ufunc.accumulate`` is defined as the running sum,
  ``r[i] = r[i-1] + a[i]``), per-request times are slot sums ``(s0 + s1) +
  s2`` with unused slots padded by ``+0.0`` (exact identity for the finite
  non-negative costs involved), and batch cost pricing uses the cost
  models' ``*_ms_batch`` methods, which replay the scalar arithmetic
  elementwise;
* identical histograms: :meth:`LatencyHistogram.bulk_record` routes every
  distinct value through the same scalar binning formula as ``record``.

The kernels are **policy-agnostic**: every state mutation on a *bounded*
cache goes through the real ``lookup``/``insert``/``invalidate`` methods,
so a non-LRU replacement policy (:mod:`repro.cache.policy` -- LFU
frequency counters, Random victim streams) advances exactly as in the
reference loop and the parity contract holds for any per-level policy
mix.  The only method bypass -- the warm-hit raw ``_entries`` dict probe
-- is taken solely for *unbounded* caches, where no eviction can ever
happen and policy bookkeeping is therefore unobservable.

Journeys and telemetry are *decoders* over the batch's column store: a
detached run (no sink, no telemetry) pays one pointer check per batch,
while an attached run reconstructs journeys / feeds
``RunTelemetry.observe_values`` from the already-priced columns.

Fault residual
--------------
Fault plans no longer dispatch wholesale to the reference loop.  The
driver splits the trace into spans at batch boundaries, telemetry bin
edges, *and fault-event edges* (``searchsorted`` over the plan's event
times), so no span ever straddles an injector state change.  Each span
then runs in one of two modes:

* **quiescent** (``injector.faults_active`` is false after advancing to
  the span's start): the vectorized kernel runs.  With a plan attached
  every request takes the architecture's ``_process_faulted`` path, so
  kernels carry a ``faulted`` mode replaying that path's quiescent-window
  semantics exactly -- ``degraded_ms`` is the identity at multiplier 1.0,
  no node is down, no hint-loss draw happens at probability 0.0, and the
  residual per-architecture differences (the hint path skipping push
  accounting, the directory trusting its possibly-stale visible map) are
  encoded in the faulted state loops below;
* **active** (any node down / multiplier != 1 / loss probability > 0):
  the span falls back to a per-request loop over ``architecture.process``
  -- byte-identical because it *is* the reference loop body.

Audit hooks remain inherently per-request (checkpoints walk live state
between requests), so audited runs still dispatch to the reference loop.

Adding an architecture = writing one ``_Kernel`` subclass: a per-batch
state loop emitting (pattern, point, aux, flags) small-int columns, a
``STEP_TABLE`` mapping patterns to journey shapes, and a cost-pricing
method.  The driver (batching, warmup masking, metrics folding, telemetry
bin splitting, fault-span splitting, journey decode) is
architecture-independent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.cache.lru import LookupResult
from repro.netmodel.model import AccessPoint
from repro.obs import profiling
from repro.sim.metrics import SimMetrics, StepAggregate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.events import FaultPlan
    from repro.faults.injector import FaultInjector
    from repro.hierarchy.base import AccessResult, Architecture
    from repro.obs.sink import JourneySink
    from repro.obs.telemetry import RunTelemetry
    from repro.traces.records import Trace

#: Default batch size; parity is batch-size-independent (tests sweep it).
DEFAULT_BATCH_SIZE = 4096

#: Result-flag bits (column ``flags``), decoded into SimMetrics counters
#: and telemetry observations.
FLAG_REMOTE_HIT = 1
FLAG_FALSE_POSITIVE = 2
FLAG_FALSE_NEGATIVE = 4
FLAG_SUBOPTIMAL = 8
FLAG_PUSH_HIT = 16
FLAG_STALE_FORWARD = 32


def _sequential_sum(initial: float, values: np.ndarray) -> float:
    """``((initial + v0) + v1) + ...`` bit-for-bit, without a Python loop.

    ``np.cumsum`` is ``np.add.accumulate``, whose contract is the strict
    running sum -- the same left-to-right IEEE additions the reference
    engine's ``total += value`` chain performs (pinned by a unit test).
    """
    buffer = np.empty(len(values) + 1, dtype=np.float64)
    buffer[0] = initial
    buffer[1:] = values
    return float(np.cumsum(buffer)[-1])


class _BatchResult:
    """Column store for one processed batch (small ints + slot costs)."""

    __slots__ = ("pattern", "point", "aux", "flags", "slot_costs", "time_ms")

    def __init__(self, pattern, point, aux, flags, slot_costs):
        self.pattern = pattern  # kernel-defined path shape per row
        self.point = point  # AccessPoint int per row
        self.aux = aux  # kernel-defined (target node / probe point)
        self.flags = flags  # FLAG_* bitmask per row
        self.slot_costs = slot_costs  # list of float64 arrays, journey order
        # Per-request charged time: left-to-right slot sum with zero-padded
        # unused slots, elementwise-identical to the journey's step sum.
        time_ms = slot_costs[0]
        for costs in slot_costs[1:]:
            time_ms = time_ms + costs
        self.time_ms = time_ms


class _Kernel:
    """One architecture's batchable hot path (state loop + pricing)."""

    #: pattern -> ((slot, StepKind.value, wasted), ...) in journey order.
    STEP_TABLE: dict[int, tuple[tuple[int, str, bool], ...]] = {}

    #: Kernels whose state loop passes real ``Request`` objects to live
    #: collaborators (push policies) need the materialized request list.
    NEEDS_REQUESTS = False

    def __init__(self, architecture: "Architecture", columns, requests=None) -> None:
        self.arch = architecture
        self.columns = columns
        self.requests = requests
        # With a fault plan bound, *every* request takes the architecture's
        # ``_process_faulted`` path; kernels replay its quiescent-window
        # semantics when this is set (the driver only invokes kernels in
        # quiescent spans -- active windows fall back per-request).
        self.faulted = architecture.faults is not None

    def span_begin(self) -> None:
        """Per-span hook before a quiescent faulted span (default no-op)."""

    def process_batch(self, idx: np.ndarray) -> _BatchResult:
        raise NotImplementedError

    def result_for(self, batch: _BatchResult, row: int) -> "AccessResult":
        raise NotImplementedError

    def _kind_table(self):
        """kind -> [(pattern, slot, wasted), ...], derived from STEP_TABLE."""
        table: dict[str, list[tuple[int, int, bool]]] = {}
        for pattern, slots in self.STEP_TABLE.items():
            for slot, kind, wasted in slots:
                table.setdefault(kind, []).append((pattern, slot, wasted))
        return table


class HierarchyKernel(_Kernel):
    """Vectorized path of :class:`DataHierarchy`.

    Pattern ids double as AccessPoint ints (the hierarchy's single journey
    step is fully determined by the deepest level reached).  The quiescent
    window of ``_process_faulted`` is byte-identical to the healthy path
    (``degraded_ms`` is the identity, ``fault_ms=0.0`` equals the healthy
    step default), so one state loop serves both modes.
    """

    STEP_TABLE = {
        1: ((0, "local_lookup", False),),
        2: ((0, "level_traversal", False),),
        3: ((0, "level_traversal", False),),
        4: ((0, "origin_fetch", False),),
    }

    def __init__(self, architecture, columns, requests=None) -> None:
        super().__init__(architecture, columns, requests)
        topology = architecture.topology
        self._l1_all = topology.l1_of_clients(columns.client)
        self._l2_all = self._l1_all // topology.l1_per_l2
        # Unbounded caches never evict, so replacement bookkeeping (LRU
        # recency order, LFU frequencies, Random's key table) is
        # unobservable on the healthy path: a pure HIT's only state effect
        # (``_touch``) can be skipped and the lookup becomes one dict
        # probe.  STALE and MISS rows still take the real method calls,
        # and *bounded* caches take them for every row -- that is what
        # keeps the kernels policy-agnostic (module docstring).  (Crash
        # events empty ``_entries`` in place, so the dict references stay
        # valid across fault windows.)
        self._l1_entries = [
            cache._entries if cache.capacity_bytes is None else None
            for cache in architecture.l1_caches
        ]

    def process_batch(self, idx: np.ndarray) -> _BatchResult:
        columns = self.columns
        oids = columns.object[idx].tolist()
        versions = columns.version[idx].tolist()
        sizes_list = columns.size[idx].tolist()
        l1_list = self._l1_all[idx].tolist()
        l2_list = self._l2_all[idx].tolist()

        arch = self.arch
        l1_caches = arch.l1_caches
        l1_entries = self._l1_entries
        l2_caches = arch.l2_caches
        l3 = arch.l3_cache
        l3_lookup = l3.lookup
        l3_insert = l3.insert
        hit = LookupResult.HIT
        pattern_list = []
        append = pattern_list.append
        for oid, version, size, l1i, l2i in zip(
            oids, versions, sizes_list, l1_list, l2_list
        ):
            entries = l1_entries[l1i]
            if entries is not None:
                entry = entries.get(oid)
                if entry is not None and entry.version >= version:
                    append(1)
                    continue
                l1 = l1_caches[l1i]
                if entry is not None:
                    l1.lookup(oid, version)  # STALE: invalidates the copy
            else:
                l1 = l1_caches[l1i]
                if l1.lookup(oid, version) is hit:
                    append(1)
                    continue
            l2 = l2_caches[l2i]
            if l2.lookup(oid, version) is hit:
                l1.insert(oid, size, version)
                append(2)
                continue
            if l3_lookup(oid, version) is hit:
                l2.insert(oid, size, version)
                l1.insert(oid, size, version)
                append(3)
                continue
            l3_insert(oid, size, version)
            l2.insert(oid, size, version)
            l1.insert(oid, size, version)
            append(4)

        pattern = np.array(pattern_list, dtype=np.int64)
        sizes = columns.size[idx]
        cost = arch.cost_model
        s0 = np.empty(len(pattern), dtype=np.float64)
        for point in AccessPoint:
            rows = pattern == int(point)
            if rows.any():
                s0[rows] = cost.hierarchical_ms_batch(point, sizes[rows])
        flags = np.where(
            (pattern == 2) | (pattern == 3), FLAG_REMOTE_HIT, 0
        ).astype(np.int64)
        # aux carries the requester's L1 index (the L2 parent is derived).
        aux = self._l1_all[idx]
        return _BatchResult(pattern, pattern, aux, flags, [s0])

    def result_for(self, batch: _BatchResult, row: int) -> "AccessResult":
        from repro.obs.journey import Journey

        pattern = int(batch.pattern[row])
        cost = float(batch.slot_costs[0][row])
        l1_index = int(batch.aux[row])
        journey = Journey()
        if pattern == 1:
            journey.local_lookup(cost, target=f"l1:{l1_index}")
            return journey.result(AccessPoint.L1, hit=True)
        if pattern == 2:
            l2_index = l1_index // self.arch.topology.l1_per_l2
            journey.level_traversal(cost, target=f"l2:{l2_index}")
            return journey.result(AccessPoint.L2, hit=True, remote_hit=True)
        if pattern == 3:
            journey.level_traversal(cost, target="l3")
            return journey.result(AccessPoint.L3, hit=True, remote_hit=True)
        journey.origin_fetch(cost)
        return journey.result(AccessPoint.SERVER, hit=False)


class IcpKernel(_Kernel):
    """Vectorized path of :class:`IcpHierarchy` (sibling-query fan-out).

    Every local miss pays the sibling query round trip (slot 0), then
    resolves at the first sibling holding a current copy, the L2 parent,
    the L3 root, or the origin server.  The quiescent faulted window is
    byte-identical to the healthy walk: with no sibling down the live-
    sibling partition preserves order, no timeout fires, and every
    degraded charge is the identity.
    """

    P_LOCAL = 1
    P_SIBLING = 2
    P_L2 = 3
    P_L3 = 4
    P_MISS = 5

    STEP_TABLE = {
        1: ((0, "local_lookup", False),),
        2: ((0, "peer_probe", False), (1, "transfer", False)),
        3: ((0, "peer_probe", False), (1, "level_traversal", False)),
        4: ((0, "peer_probe", False), (1, "level_traversal", False)),
        5: ((0, "peer_probe", False), (1, "origin_fetch", False)),
    }

    def __init__(self, architecture, columns, requests=None) -> None:
        super().__init__(architecture, columns, requests)
        topology = architecture.topology
        self._l1_all = topology.l1_of_clients(columns.client)
        self._l2_all = self._l1_all // topology.l1_per_l2
        self._siblings = [
            topology.siblings_of(l1) for l1 in range(topology.n_l1)
        ]
        self._l1_entries = [
            cache._entries if cache.capacity_bytes is None else None
            for cache in architecture.l1_caches
        ]

    def process_batch(self, idx: np.ndarray) -> _BatchResult:
        columns = self.columns
        oids = columns.object[idx].tolist()
        versions = columns.version[idx].tolist()
        sizes_list = columns.size[idx].tolist()
        l1_list = self._l1_all[idx].tolist()
        l2_list = self._l2_all[idx].tolist()

        arch = self.arch
        l1_caches = arch.l1_caches
        l1_entries = self._l1_entries
        l2_caches = arch.l2_caches
        l3 = arch.l3_cache
        siblings_table = self._siblings
        hit = LookupResult.HIT
        pattern_list = []
        append = pattern_list.append
        sib_rows: list[int] = []
        sib_vals: list[int] = []
        row = -1
        for oid, version, size, l1i, l2i in zip(
            oids, versions, sizes_list, l1_list, l2_list
        ):
            row += 1
            entries = l1_entries[l1i]
            if entries is not None:
                entry = entries.get(oid)
                if entry is not None and entry.version >= version:
                    append(1)
                    continue
                l1 = l1_caches[l1i]
                if entry is not None:
                    l1.lookup(oid, version)  # STALE: invalidates the copy
            else:
                l1 = l1_caches[l1i]
                if l1.lookup(oid, version) is hit:
                    append(1)
                    continue
            arch.sibling_queries += 1
            found = -1
            for sibling in siblings_table[l1i]:
                if l1_caches[sibling].lookup(oid, version) is hit:
                    arch.sibling_hits += 1
                    l1.insert(oid, size, version)
                    found = sibling
                    break
            if found >= 0:
                append(2)
                sib_rows.append(row)
                sib_vals.append(found)
                continue
            if l2_caches[l2i].lookup(oid, version) is hit:
                l1.insert(oid, size, version)
                append(3)
                continue
            if l3.lookup(oid, version) is hit:
                l2_caches[l2i].insert(oid, size, version)
                l1.insert(oid, size, version)
                append(4)
                continue
            l3.insert(oid, size, version)
            l2_caches[l2i].insert(oid, size, version)
            l1.insert(oid, size, version)
            append(5)

        pattern = np.array(pattern_list, dtype=np.int64)
        n = len(pattern)
        sizes = columns.size[idx]
        cost = arch.cost_model
        s0 = np.zeros(n, dtype=np.float64)
        s1 = np.zeros(n, dtype=np.float64)
        local_rows = pattern == 1
        if local_rows.any():
            s0[local_rows] = cost.hierarchical_ms_batch(
                AccessPoint.L1, sizes[local_rows]
            )
        nonlocal_rows = ~local_rows
        s0[nonlocal_rows] = cost.probe_ms(AccessPoint.L2)
        sib_hit = pattern == 2
        if sib_hit.any():
            s1[sib_hit] = cost.via_l1_ms_batch(AccessPoint.L2, sizes[sib_hit])
        for pat, point in (
            (3, AccessPoint.L2),
            (4, AccessPoint.L3),
            (5, AccessPoint.SERVER),
        ):
            rows = pattern == pat
            if rows.any():
                s1[rows] = cost.hierarchical_ms_batch(point, sizes[rows])

        result_point = np.where(
            local_rows,
            1,
            np.where(pattern <= 3, 2, np.where(pattern == 4, 3, 4)),
        )
        flags = np.where(
            (pattern >= 2) & (pattern <= 4), FLAG_REMOTE_HIT, 0
        ).astype(np.int64)
        # aux: serving sibling for sibling hits, requester's L1 otherwise.
        aux = self._l1_all[idx].copy()
        if sib_rows:
            aux[np.array(sib_rows, dtype=np.int64)] = np.array(
                sib_vals, dtype=np.int64
            )
        return _BatchResult(pattern, result_point, aux, flags, [s0, s1])

    def result_for(self, batch: _BatchResult, row: int) -> "AccessResult":
        from repro.obs.journey import Journey

        pattern = int(batch.pattern[row])
        s0 = float(batch.slot_costs[0][row])
        s1 = float(batch.slot_costs[1][row])
        aux = int(batch.aux[row])
        journey = Journey()
        if pattern == 1:
            journey.local_lookup(s0, target=f"l1:{aux}")
            return journey.result(AccessPoint.L1, hit=True)
        journey.peer_probe(s0, target="siblings")
        if pattern == 2:
            journey.transfer(s1, target=f"l1:{aux}")
            return journey.result(AccessPoint.L2, hit=True, remote_hit=True)
        if pattern == 3:
            l2_index = aux // self.arch.topology.l1_per_l2
            journey.level_traversal(s1, target=f"l2:{l2_index}")
            return journey.result(AccessPoint.L2, hit=True, remote_hit=True)
        if pattern == 4:
            journey.level_traversal(s1, target="l3")
            return journey.result(AccessPoint.L3, hit=True, remote_hit=True)
        journey.origin_fetch(s1)
        return journey.result(AccessPoint.SERVER, hit=False)


class DirectoryKernel(_Kernel):
    """Vectorized path of :class:`CentralizedDirectoryArchitecture`.

    Healthy mode filters advertised holders by ground-truth freshness (the
    directory is exact), so a forwarded fetch always hits.  Faulted mode
    replays ``_process_faulted``'s quiescent window: the freshness premise
    is void (crashed proxies died without visible retractions), so the
    nearest *visible* holder is trusted and a missing copy produces the
    stale-forward pattern -- probe wasted, entry dropped, origin fetch.
    """

    P_LOCAL = 1
    P_REMOTE = 2
    P_MISS = 3
    P_STALE = 4

    STEP_TABLE = {
        1: ((0, "local_lookup", False),),
        2: ((0, "peer_probe", False), (1, "transfer", False)),
        3: ((0, "peer_probe", False), (1, "origin_fetch", False)),
        4: (
            (0, "peer_probe", False),
            (1, "peer_probe", True),
            (2, "origin_fetch", False),
        ),
    }

    def __init__(self, architecture, columns, requests=None) -> None:
        super().__init__(architecture, columns, requests)
        topology = architecture.topology
        self._l1_all = topology.l1_of_clients(columns.client)
        self._dist_rows = topology.distance_matrix().tolist()
        # Pure local hits on unbounded caches skip promotion and the
        # ``_now`` stamp: the directory's zero propagation delay makes the
        # retraction timestamp unobservable, and crash retractions are
        # invisible (no schedule at all).
        self._l1_entries = [
            cache._entries if cache.capacity_bytes is None else None
            for cache in architecture.l1_caches
        ]

    def process_batch(self, idx: np.ndarray) -> _BatchResult:
        columns = self.columns
        times = columns.time[idx].tolist()
        oids = columns.object[idx].tolist()
        versions = columns.version[idx].tolist()
        sizes_list = columns.size[idx].tolist()
        l1_list = self._l1_all[idx].tolist()

        arch = self.arch
        caches = arch.l1_caches
        l1_entries = self._l1_entries
        directory = arch.directory
        find = directory.find
        inform = directory.inform
        drop_visible = directory.drop_visible
        truth = directory._truth
        dist_rows = self._dist_rows
        hit = LookupResult.HIT
        faulted = self.faulted

        pattern_list = []
        miss_row_list = []
        holder_list = []
        point_list = []
        p_append = pattern_list.append
        m_append = miss_row_list.append
        h_append = holder_list.append
        a_append = point_list.append
        row = -1
        for t, oid, version, size, l1i in zip(
            times, oids, versions, sizes_list, l1_list
        ):
            row += 1
            entries = l1_entries[l1i]
            if entries is not None:
                entry = entries.get(oid)
                if entry is not None and entry.version >= version:
                    p_append(1)
                    continue
                arch._now = t
                cache = caches[l1i]
                if entry is not None:
                    cache.lookup(oid, version)  # STALE: invalidate + retract
            else:
                arch._now = t
                cache = caches[l1i]
                if cache.lookup(oid, version) is hit:
                    p_append(1)
                    continue
            m_append(row)
            lookup = find(t, oid, l1i)
            holders = lookup.holders
            if faulted:
                # Quiescent window of ``_process_faulted``: trust the
                # visible map without the freshness filter, and discover
                # missing copies via the probe itself.
                if holders:
                    drow = dist_rows[l1i]
                    holder = min(holders, key=lambda h: (drow[h], h))
                    point = drow[holder]
                    if caches[holder].lookup(oid, version) is hit:
                        cache.insert(oid, size, version)
                        inform(t, oid, l1i, version)
                        p_append(2)
                        h_append(holder)
                        a_append(point)
                        continue
                    drop_visible(oid, holder)
                    cache.insert(oid, size, version)
                    inform(t, oid, l1i, version)
                    p_append(4)
                    h_append(holder)
                    a_append(point)
                    continue
                cache.insert(oid, size, version)
                inform(t, oid, l1i, version)
                p_append(3)
                h_append(-1)
                a_append(4)
                continue
            holder = None
            if holders:
                truth_map = truth.get(oid)
                if truth_map:
                    fresh = [
                        h for h in holders if truth_map.get(h, -1) >= version
                    ]
                else:
                    fresh = []
                if fresh:
                    drow = dist_rows[l1i]
                    holder = min(fresh, key=lambda h: (drow[h], h))
            if holder is not None:
                point = dist_rows[l1i][holder]
                caches[holder].lookup(oid, version)  # refresh peer LRU
                cache.insert(oid, size, version)
                inform(t, oid, l1i, version)
                p_append(2)
                h_append(holder)
                a_append(point)
                continue
            cache.insert(oid, size, version)
            inform(t, oid, l1i, version)
            p_append(3)
            h_append(-1)
            a_append(4)

        pattern = np.array(pattern_list, dtype=np.int64)
        n = len(pattern)
        miss_rows = np.array(miss_row_list, dtype=np.int64)
        aux_point = np.full(n, 4, dtype=np.int64)
        if miss_rows.size:
            aux_point[miss_rows] = np.array(point_list, dtype=np.int64)
        sizes = columns.size[idx]
        cost = arch.cost_model

        s0 = np.zeros(n, dtype=np.float64)
        s1 = np.zeros(n, dtype=np.float64)
        s2 = np.zeros(n, dtype=np.float64)
        local_rows = pattern == 1
        if local_rows.any():
            s0[local_rows] = cost.via_l1_ms_batch(
                AccessPoint.L1, sizes[local_rows]
            )
        nonlocal_rows = ~local_rows
        s0[nonlocal_rows] = cost.probe_ms(arch.directory_point)
        remote_rows = pattern == 2
        for point in (AccessPoint.L2, AccessPoint.L3):
            rows = remote_rows & (aux_point == int(point))
            if rows.any():
                s1[rows] = cost.via_l1_ms_batch(point, sizes[rows])
        plain_miss = pattern == 3
        if plain_miss.any():
            s1[plain_miss] = cost.via_l1_ms_batch(
                AccessPoint.SERVER, sizes[plain_miss]
            )
        stale_rows = pattern == 4
        if stale_rows.any():
            for point in (AccessPoint.L2, AccessPoint.L3):
                rows = stale_rows & (aux_point == int(point))
                if rows.any():
                    s1[rows] = cost.probe_ms(point)
            s2[stale_rows] = cost.via_l1_ms_batch(
                AccessPoint.SERVER, sizes[stale_rows]
            )

        result_point = np.where(
            local_rows, 1, np.where(remote_rows, aux_point, 4)
        )
        flags = np.zeros(n, dtype=np.int64)
        flags[remote_rows] = FLAG_REMOTE_HIT
        flags[stale_rows] = FLAG_STALE_FORWARD
        holder = self._l1_all[idx].copy()
        if miss_rows.size:
            holder[miss_rows] = np.array(holder_list, dtype=np.int64)
        return _BatchResult(pattern, result_point, holder, flags, [s0, s1, s2])

    def result_for(self, batch: _BatchResult, row: int) -> "AccessResult":
        from repro.obs.journey import Journey

        pattern = int(batch.pattern[row])
        s0 = float(batch.slot_costs[0][row])
        s1 = float(batch.slot_costs[1][row])
        aux = int(batch.aux[row])
        journey = Journey()
        if pattern == 1:
            journey.local_lookup(s0, target=f"l1:{aux}")
            return journey.result(AccessPoint.L1, hit=True)
        journey.peer_probe(s0, target="directory")
        if pattern == 2:
            journey.transfer(s1, target=f"l1:{aux}")
            return journey.result(
                AccessPoint(int(batch.point[row])), hit=True, remote_hit=True
            )
        if pattern == 4:
            journey.peer_probe(s1, target=f"l1:{aux}", wasted=True)
            journey.mark_stale_forward()
            journey.origin_fetch(float(batch.slot_costs[2][row]))
            return journey.result(AccessPoint.SERVER, hit=False)
        journey.origin_fetch(s1)
        return journey.result(AccessPoint.SERVER, hit=False)


class HintKernel(_Kernel):
    """Vectorized path of plain :class:`HintHierarchy`.

    Plain = no push policy and no ideal-push accounting; under those the
    reference path's stale-holder snapshot and push-mark consumption are
    provably free of state effects, so the healthy loop below calls
    exactly the mutating operations the reference calls, in the same
    order: L1 lookup, directory find, nearest-holder probe, false-positive
    recording, push-stats clock/byte accounting, demand store + inform.

    The faulted loop replays ``_process_faulted``'s quiescent window: it
    skips the push-stats accounting entirely, re-applies the propagation
    delay per span (idempotent at zero skew), and stamps a target on the
    false-positive journey's hint-lookup step -- the reference path's only
    journey-shape difference.
    """

    P_LOCAL = 1
    P_REMOTE = 2
    P_MISS = 3
    P_MISS_FP = 4
    P_MISS_FN = 5

    STEP_TABLE = {
        1: ((0, "local_lookup", False),),
        2: ((0, "hint_lookup", False), (1, "transfer", False)),
        3: ((0, "hint_lookup", False), (1, "origin_fetch", False)),
        4: (
            (0, "hint_lookup", False),
            (1, "peer_probe", True),
            (2, "origin_fetch", False),
        ),
        5: ((0, "hint_lookup", False), (1, "origin_fetch", False)),
    }

    def __init__(self, architecture, columns, requests=None) -> None:
        super().__init__(architecture, columns, requests)
        topology = architecture.topology
        self._l1_all = topology.l1_of_clients(columns.client)
        self._dist_rows = topology.distance_matrix().tolist()
        # Same unbounded-cache shortcut as the hierarchy kernel: a pure
        # local HIT mutates nothing observable, so it needs neither the
        # LRU promotion nor the ``arch._now`` stamp (which only eviction
        # retractions read).
        self._l1_entries = [
            cache._entries if cache.capacity_bytes is None else None
            for cache in architecture.l1_caches
        ]

    def span_begin(self) -> None:
        if self.faulted:
            # StaleHintDrift re-application, per ``_process_faulted``:
            # quiescent windows have zero skew, so this is idempotent per
            # span (the reference re-assigns the same value per request).
            arch = self.arch
            arch.directory.propagation_delay_s = (
                arch._base_hint_delay_s + arch.faults.hint_delay_skew_s
            )

    def process_batch(self, idx: np.ndarray) -> _BatchResult:
        if self.faulted:
            return self._process_batch_faulted(idx)
        return self._process_batch_healthy(idx)

    def _process_batch_healthy(self, idx: np.ndarray) -> _BatchResult:
        columns = self.columns
        times = columns.time[idx].tolist()
        oids = columns.object[idx].tolist()
        versions = columns.version[idx].tolist()
        sizes_list = columns.size[idx].tolist()
        l1_list = self._l1_all[idx].tolist()

        arch = self.arch
        caches = arch.l1_caches
        l1_entries = self._l1_entries
        directory = arch.directory
        find = directory.find
        record_fp = directory.record_false_positive
        inform = directory.inform
        truth = directory._truth
        push_stats = arch.push_stats
        note_time = push_stats.note_time
        dist_rows = self._dist_rows
        hit = LookupResult.HIT

        # Local hits append only a pattern; holder/point/flag for them are
        # the requester's L1 / AccessPoint.L1 / 0, scattered in afterwards.
        pattern_list = []
        miss_row_list = []  # batch-local row index of each non-local row
        holder_list = []
        aux_point_list = []
        flag_list = []
        p_append = pattern_list.append
        m_append = miss_row_list.append
        h_append = holder_list.append
        a_append = aux_point_list.append
        f_append = flag_list.append
        row = -1
        for t, oid, version, size, l1i in zip(
            times, oids, versions, sizes_list, l1_list
        ):
            row += 1
            entries = l1_entries[l1i]
            if entries is not None:
                entry = entries.get(oid)
                if entry is not None and entry.version >= version:
                    p_append(1)
                    continue
                arch._now = t
                cache = caches[l1i]
                if entry is not None:
                    cache.lookup(oid, version)  # STALE: invalidate + retract
            else:
                arch._now = t
                cache = caches[l1i]
                if cache.lookup(oid, version) is hit:
                    p_append(1)
                    continue
            m_append(row)
            lookup = find(t, oid, l1i)
            holders = lookup.holders
            if holders:
                drow = dist_rows[l1i]
                holder = min(holders, key=lambda h: (drow[h], h))
                point = drow[holder]
                if caches[holder].lookup(oid, version) is hit:
                    held_map = truth.get(oid)
                    suboptimal = False
                    if held_map:
                        for node, held in held_map.items():
                            if (
                                held >= version
                                and node != l1i
                                and drow[node] < point
                            ):
                                suboptimal = True
                                break
                    note_time(t)
                    push_stats.demand_bytes += size
                    cache.insert(oid, size, version)
                    inform(t, oid, l1i, version)
                    p_append(2)
                    h_append(holder)
                    a_append(point)
                    f_append(
                        FLAG_REMOTE_HIT | FLAG_SUBOPTIMAL
                        if suboptimal
                        else FLAG_REMOTE_HIT
                    )
                    continue
                record_fp()
                note_time(t)
                push_stats.demand_bytes += size
                cache.insert(oid, size, version)
                inform(t, oid, l1i, version)
                p_append(4)
                h_append(holder)
                a_append(point)
                f_append(FLAG_FALSE_POSITIVE)
                continue
            note_time(t)
            push_stats.demand_bytes += size
            cache.insert(oid, size, version)
            inform(t, oid, l1i, version)
            if lookup.false_negative:
                p_append(5)
                f_append(FLAG_FALSE_NEGATIVE)
            else:
                p_append(3)
                f_append(0)
            h_append(-1)
            a_append(4)

        return self._finalize(
            idx, pattern_list, miss_row_list, holder_list, aux_point_list,
            flag_list,
        )

    def _process_batch_faulted(self, idx: np.ndarray) -> _BatchResult:
        """Quiescent window of ``_process_faulted``: no node down, zero
        loss probability (no RNG draw), identity latency -- but no
        push-stats accounting, and every store informs visibly."""
        columns = self.columns
        times = columns.time[idx].tolist()
        oids = columns.object[idx].tolist()
        versions = columns.version[idx].tolist()
        sizes_list = columns.size[idx].tolist()
        l1_list = self._l1_all[idx].tolist()

        arch = self.arch
        caches = arch.l1_caches
        l1_entries = self._l1_entries
        directory = arch.directory
        find = directory.find
        record_fp = directory.record_false_positive
        inform = directory.inform
        truth = directory._truth
        dist_rows = self._dist_rows
        hit = LookupResult.HIT

        pattern_list = []
        miss_row_list = []
        holder_list = []
        aux_point_list = []
        flag_list = []
        p_append = pattern_list.append
        m_append = miss_row_list.append
        h_append = holder_list.append
        a_append = aux_point_list.append
        f_append = flag_list.append
        row = -1
        for t, oid, version, size, l1i in zip(
            times, oids, versions, sizes_list, l1_list
        ):
            row += 1
            entries = l1_entries[l1i]
            if entries is not None:
                entry = entries.get(oid)
                if entry is not None and entry.version >= version:
                    p_append(1)
                    continue
                arch._now = t
                cache = caches[l1i]
                if entry is not None:
                    cache.lookup(oid, version)  # STALE: invalidate + retract
            else:
                arch._now = t
                cache = caches[l1i]
                if cache.lookup(oid, version) is hit:
                    p_append(1)
                    continue
            m_append(row)
            lookup = find(t, oid, l1i)
            holders = lookup.holders
            if holders:
                drow = dist_rows[l1i]
                holder = min(holders, key=lambda h: (drow[h], h))
                point = drow[holder]
                if caches[holder].lookup(oid, version) is hit:
                    held_map = truth.get(oid)
                    suboptimal = False
                    if held_map:
                        for node, held in held_map.items():
                            if (
                                held >= version
                                and node != l1i
                                and drow[node] < point
                            ):
                                suboptimal = True
                                break
                    cache.insert(oid, size, version)
                    inform(t, oid, l1i, version)
                    p_append(2)
                    h_append(holder)
                    a_append(point)
                    f_append(
                        FLAG_REMOTE_HIT | FLAG_SUBOPTIMAL
                        if suboptimal
                        else FLAG_REMOTE_HIT
                    )
                    continue
                record_fp()
                cache.insert(oid, size, version)
                inform(t, oid, l1i, version)
                p_append(4)
                h_append(holder)
                a_append(point)
                f_append(FLAG_FALSE_POSITIVE)
                continue
            cache.insert(oid, size, version)
            inform(t, oid, l1i, version)
            if lookup.false_negative:
                p_append(5)
                f_append(FLAG_FALSE_NEGATIVE)
            else:
                p_append(3)
                f_append(0)
            h_append(-1)
            a_append(4)

        return self._finalize(
            idx, pattern_list, miss_row_list, holder_list, aux_point_list,
            flag_list,
        )

    def _finalize(
        self,
        idx,
        pattern_list,
        miss_row_list,
        holder_list,
        aux_point_list,
        flag_list,
        push_hit_rows=None,
    ) -> _BatchResult:
        """Price one hint batch (cost reconstruction gets its own span)."""
        profiler = profiling.active()
        if profiler is None:
            return self._price(
                idx, pattern_list, miss_row_list, holder_list, aux_point_list,
                flag_list, push_hit_rows,
            )
        with profiler.span(
            "cost_reconstruct", category="fastpath", rows=len(pattern_list)
        ):
            return self._price(
                idx, pattern_list, miss_row_list, holder_list, aux_point_list,
                flag_list, push_hit_rows,
            )

    def _price(
        self,
        idx,
        pattern_list,
        miss_row_list,
        holder_list,
        aux_point_list,
        flag_list,
        push_hit_rows=None,
    ) -> _BatchResult:
        """Price one hint batch from the state loop's row lists."""
        columns = self.columns
        arch = self.arch
        pattern = np.array(pattern_list, dtype=np.int64)
        n = len(pattern)
        miss_rows = np.array(miss_row_list, dtype=np.int64)
        aux_point = np.ones(n, dtype=np.int64)
        if miss_rows.size:
            aux_point[miss_rows] = np.array(aux_point_list, dtype=np.int64)
        sizes = columns.size[idx]
        cost = arch.cost_model
        hint_ms = cost.hint_lookup_ms()

        s0 = np.zeros(n, dtype=np.float64)
        s1 = np.zeros(n, dtype=np.float64)
        s2 = np.zeros(n, dtype=np.float64)
        local_rows = pattern == 1
        if local_rows.any():
            s0[local_rows] = cost.via_l1_ms_batch(
                AccessPoint.L1, sizes[local_rows]
            )
        nonlocal_rows = ~local_rows
        s0[nonlocal_rows] = hint_ms
        remote_rows = pattern == 2
        # L1 appears only under ideal-push accounting (charged point).
        for point in (AccessPoint.L1, AccessPoint.L2, AccessPoint.L3):
            rows = remote_rows & (aux_point == int(point))
            if rows.any():
                s1[rows] = cost.via_l1_ms_batch(point, sizes[rows])
        plain_miss = (pattern == 3) | (pattern == 5)
        if plain_miss.any():
            s1[plain_miss] = cost.via_l1_ms_batch(
                AccessPoint.SERVER, sizes[plain_miss]
            )
        fp_rows = pattern == 4
        if fp_rows.any():
            for point in (AccessPoint.L2, AccessPoint.L3):
                rows = fp_rows & (aux_point == int(point))
                if rows.any():
                    s1[rows] = cost.probe_ms(point)
            s2[fp_rows] = cost.via_l1_ms_batch(AccessPoint.SERVER, sizes[fp_rows])

        result_point = np.where(
            pattern == 1, 1, np.where(remote_rows, aux_point, 4)
        )
        flags = np.zeros(n, dtype=np.int64)
        # aux carries the holder / local proxy index for journey targets
        # (the transfer point of a remote hit is result_point itself).
        holder = self._l1_all[idx].copy()
        if miss_rows.size:
            flags[miss_rows] = np.array(flag_list, dtype=np.int64)
            holder[miss_rows] = np.array(holder_list, dtype=np.int64)
        if push_hit_rows:
            flags[np.array(push_hit_rows, dtype=np.int64)] = FLAG_PUSH_HIT
        return _BatchResult(pattern, result_point, holder, flags, [s0, s1, s2])

    def result_for(self, batch: _BatchResult, row: int) -> "AccessResult":
        from repro.obs.journey import Journey

        pattern = int(batch.pattern[row])
        s0 = float(batch.slot_costs[0][row])
        s1 = float(batch.slot_costs[1][row])
        s2 = float(batch.slot_costs[2][row])
        holder = int(batch.aux[row])
        flags = int(batch.flags[row])
        journey = Journey()
        if pattern == 1:
            journey.local_lookup(s0, target=f"l1:{holder}")
            if flags & FLAG_PUSH_HIT:
                journey.mark_push_hit()
            return journey.result(AccessPoint.L1, hit=True)
        if pattern == 2:
            journey.hint_lookup(s0, target=f"l1:{holder}")
            journey.transfer(s1, target=f"l1:{holder}")
            if flags & FLAG_SUBOPTIMAL:
                journey.mark_suboptimal()
            return journey.result(
                AccessPoint(int(batch.point[row])), hit=True, remote_hit=True
            )
        if pattern == 4:
            if self.faulted:
                # ``_process_faulted`` stamps the probed holder on the
                # hint-lookup step; the healthy path leaves it blank.
                journey.hint_lookup(s0, target=f"l1:{holder}")
            else:
                journey.hint_lookup(s0)
            journey.peer_probe(s1, target=f"l1:{holder}", wasted=True)
            journey.mark_false_positive()
            journey.origin_fetch(s2)
            return journey.result(AccessPoint.SERVER, hit=False)
        journey.hint_lookup(s0)
        if pattern == 5:
            journey.mark_false_negative()
        journey.origin_fetch(s1)
        return journey.result(AccessPoint.SERVER, hit=False)


class PushHintKernel(HintKernel):
    """Vectorized path of :class:`HintHierarchy` with push accounting.

    Covers push policies (``repro.push.hierarchical`` / ``update_push``)
    and the ideal-push bound (``charge_remote_as_l1``).  The state loop
    drives the *same live policy object* through ``on_remote_fetch`` /
    ``on_server_fetch`` and applies its actions through the
    architecture's own ``_apply_pushes`` -- so seeded target-selection
    RNG streams, budget accounting, pending-push marks, and LRU demotion
    all advance exactly as in the reference loop.  Requires materialized
    requests (policies receive real ``Request`` objects).

    Under a fault plan the inherited faulted loop applies unchanged:
    ``_process_faulted`` ignores push policies and ideal accounting.
    """

    NEEDS_REQUESTS = True

    def _process_batch_healthy(self, idx: np.ndarray) -> _BatchResult:
        columns = self.columns
        times = columns.time[idx].tolist()
        oids = columns.object[idx].tolist()
        versions = columns.version[idx].tolist()
        sizes_list = columns.size[idx].tolist()
        l1_list = self._l1_all[idx].tolist()
        idx_list = idx.tolist()

        arch = self.arch
        caches = arch.l1_caches
        l1_entries = self._l1_entries
        directory = arch.directory
        find = directory.find
        record_fp = directory.record_false_positive
        inform = directory.inform
        truth = directory._truth
        push_stats = arch.push_stats
        note_time = push_stats.note_time
        dist_rows = self._dist_rows
        hit = LookupResult.HIT
        stale = LookupResult.STALE
        requests = self.requests
        policy = arch.push_policy
        ideal = arch.charge_remote_as_l1
        apply_pushes = arch._apply_pushes
        # Local hits are the steady-state bulk, so the consume-mark check
        # is inlined: one dict pop replaces the method call, and the
        # stats/peek work only runs when a mark actually existed.  The
        # dict itself stays live (eviction pops from the same object).
        pending_pop = arch._pending_push.pop
        peek_caches = [cache.peek for cache in caches]

        pattern_list = []
        miss_row_list = []
        holder_list = []
        aux_point_list = []
        flag_list = []
        push_hit_rows: list[int] = []
        p_append = pattern_list.append
        m_append = miss_row_list.append
        h_append = holder_list.append
        a_append = aux_point_list.append
        f_append = flag_list.append
        row = -1
        for t, oid, version, size, l1i, gi in zip(
            times, oids, versions, sizes_list, l1_list, idx_list
        ):
            row += 1
            entries = l1_entries[l1i]
            local_had_stale = False
            if entries is not None:
                entry = entries.get(oid)
                if entry is not None and entry.version >= version:
                    p_append(1)
                    pushed = pending_pop((l1i, oid), None)
                    if pushed is not None and pushed >= version:
                        push_stats.used_count += 1
                        peeked = peek_caches[l1i](oid)
                        push_stats.used_bytes += peeked.size if peeked else 0
                        push_hit_rows.append(row)
                    continue
                arch._now = t
                cache = caches[l1i]
                if entry is not None:
                    local_had_stale = cache.lookup(oid, version) is stale
            else:
                arch._now = t
                cache = caches[l1i]
                local = cache.lookup(oid, version)
                if local is hit:
                    p_append(1)
                    pushed = pending_pop((l1i, oid), None)
                    if pushed is not None and pushed >= version:
                        push_stats.used_count += 1
                        peeked = peek_caches[l1i](oid)
                        push_stats.used_bytes += peeked.size if peeked else 0
                        push_hit_rows.append(row)
                    continue
                local_had_stale = local is stale
            m_append(row)
            lookup = find(t, oid, l1i)
            holders = lookup.holders
            drow = dist_rows[l1i]
            # Snapshot stale holders before any probe (the reference's
            # "recently invalidated" update-push candidate list).
            truth_map = truth.get(oid)
            if truth_map:
                stale_holders = {
                    node: held
                    for node, held in truth_map.items()
                    if held < version and node != l1i
                }
            else:
                stale_holders = {}
            if holders:
                holder = min(holders, key=lambda h: (drow[h], h))
                point = drow[holder]
                if caches[holder].lookup(oid, version) is hit:
                    charged_point = 1 if ideal else point
                    suboptimal = False
                    if truth_map:
                        for node, held in truth_map.items():
                            if (
                                held >= version
                                and node != l1i
                                and drow[node] < point
                            ):
                                suboptimal = True
                                break
                    note_time(t)
                    push_stats.demand_bytes += size
                    if not ideal:
                        cache.insert(oid, size, version)
                        inform(t, oid, l1i, version)
                    if policy is not None:
                        actions = policy.on_remote_fetch(
                            now=t,
                            request=requests[gi],
                            requester_l1=l1i,
                            source_l1=holder,
                            lca_level=point,
                        )
                        apply_pushes(actions, exclude={l1i, holder})
                    p_append(2)
                    h_append(holder)
                    a_append(charged_point)
                    f_append(
                        FLAG_REMOTE_HIT | FLAG_SUBOPTIMAL
                        if suboptimal
                        else FLAG_REMOTE_HIT
                    )
                    continue
                record_fp()
                communication_miss = local_had_stale or bool(stale_holders)
                note_time(t)
                push_stats.demand_bytes += size
                cache.insert(oid, size, version)
                inform(t, oid, l1i, version)
                if policy is not None:
                    actions = policy.on_server_fetch(
                        now=t,
                        request=requests[gi],
                        requester_l1=l1i,
                        communication_miss=communication_miss,
                        stale_holders=stale_holders,
                    )
                    apply_pushes(actions, exclude={l1i})
                p_append(4)
                h_append(holder)
                a_append(point)
                f_append(FLAG_FALSE_POSITIVE)
                continue
            communication_miss = local_had_stale or bool(stale_holders)
            note_time(t)
            push_stats.demand_bytes += size
            cache.insert(oid, size, version)
            inform(t, oid, l1i, version)
            if policy is not None:
                actions = policy.on_server_fetch(
                    now=t,
                    request=requests[gi],
                    requester_l1=l1i,
                    communication_miss=communication_miss,
                    stale_holders=stale_holders,
                )
                apply_pushes(actions, exclude={l1i})
            if lookup.false_negative:
                p_append(5)
                f_append(FLAG_FALSE_NEGATIVE)
            else:
                p_append(3)
                f_append(0)
            h_append(-1)
            a_append(4)

        return self._finalize(
            idx, pattern_list, miss_row_list, holder_list, aux_point_list,
            flag_list, push_hit_rows=push_hit_rows,
        )


class ClientHintKernel(_Kernel):
    """Vectorized path of :class:`ClientHintHierarchy`.

    Direct client-to-cache pricing, plus the seeded false-negative coin:
    the loop replays the reference's short-circuit draw (``rate > 0.0 and
    rng.random() < rate``) exactly once per non-local request, so the RNG
    stream stays aligned.  The architecture has no degraded request path,
    so the same loop serves quiescent fault windows.
    """

    P_LOCAL = 1
    P_REMOTE = 2
    P_MISS = 3
    P_MISS_FP = 4
    P_MISS_FN = 5

    STEP_TABLE = {
        1: ((0, "local_lookup", False),),
        2: ((0, "transfer", False),),
        3: ((0, "origin_fetch", False),),
        4: ((0, "peer_probe", True), (1, "origin_fetch", False)),
        5: ((0, "origin_fetch", False),),
    }

    def __init__(self, architecture, columns, requests=None) -> None:
        super().__init__(architecture, columns, requests)
        topology = architecture.topology
        self._l1_all = topology.l1_of_clients(columns.client)
        self._dist_rows = topology.distance_matrix().tolist()
        self._l1_entries = [
            cache._entries if cache.capacity_bytes is None else None
            for cache in architecture.l1_caches
        ]

    def process_batch(self, idx: np.ndarray) -> _BatchResult:
        columns = self.columns
        times = columns.time[idx].tolist()
        oids = columns.object[idx].tolist()
        versions = columns.version[idx].tolist()
        sizes_list = columns.size[idx].tolist()
        l1_list = self._l1_all[idx].tolist()

        arch = self.arch
        caches = arch.l1_caches
        l1_entries = self._l1_entries
        directory = arch.directory
        find = directory.find
        record_fp = directory.record_false_positive
        inform = directory.inform
        dist_rows = self._dist_rows
        hit = LookupResult.HIT
        rate = arch.client_false_negative_rate
        rng_random = arch._rng.random

        pattern_list = []
        miss_row_list = []
        holder_list = []
        aux_point_list = []
        flag_list = []
        p_append = pattern_list.append
        m_append = miss_row_list.append
        h_append = holder_list.append
        a_append = aux_point_list.append
        f_append = flag_list.append
        row = -1
        for t, oid, version, size, l1i in zip(
            times, oids, versions, sizes_list, l1_list
        ):
            row += 1
            entries = l1_entries[l1i]
            if entries is not None:
                entry = entries.get(oid)
                if entry is not None and entry.version >= version:
                    p_append(1)
                    continue
                arch._now = t
                cache = caches[l1i]
                if entry is not None:
                    cache.lookup(oid, version)  # STALE: invalidate + retract
            else:
                arch._now = t
                cache = caches[l1i]
                if cache.lookup(oid, version) is hit:
                    p_append(1)
                    continue
            m_append(row)
            degraded = rate > 0.0 and rng_random() < rate
            if not degraded:
                lookup = find(t, oid, l1i)
                holders = lookup.holders
                if holders:
                    drow = dist_rows[l1i]
                    holder = min(holders, key=lambda h: (drow[h], h))
                    point = drow[holder]
                    if caches[holder].lookup(oid, version) is hit:
                        cache.insert(oid, size, version)
                        inform(t, oid, l1i, version)
                        p_append(2)
                        h_append(holder)
                        a_append(point)
                        f_append(FLAG_REMOTE_HIT)
                        continue
                    record_fp()
                    cache.insert(oid, size, version)
                    inform(t, oid, l1i, version)
                    p_append(4)
                    h_append(holder)
                    a_append(point)
                    f_append(FLAG_FALSE_POSITIVE)
                    continue
            cache.insert(oid, size, version)
            inform(t, oid, l1i, version)
            if degraded:
                p_append(5)
                f_append(FLAG_FALSE_NEGATIVE)
            else:
                p_append(3)
                f_append(0)
            h_append(-1)
            a_append(4)

        pattern = np.array(pattern_list, dtype=np.int64)
        n = len(pattern)
        miss_rows = np.array(miss_row_list, dtype=np.int64)
        aux_point = np.ones(n, dtype=np.int64)
        if miss_rows.size:
            aux_point[miss_rows] = np.array(aux_point_list, dtype=np.int64)
        sizes = columns.size[idx]
        cost = arch.cost_model

        s0 = np.zeros(n, dtype=np.float64)
        s1 = np.zeros(n, dtype=np.float64)
        local_rows = pattern == 1
        if local_rows.any():
            s0[local_rows] = cost.direct_ms_batch(
                AccessPoint.L1, sizes[local_rows]
            )
        remote_rows = pattern == 2
        for point in (AccessPoint.L2, AccessPoint.L3):
            rows = remote_rows & (aux_point == int(point))
            if rows.any():
                s0[rows] = cost.direct_ms_batch(point, sizes[rows])
        plain_miss = (pattern == 3) | (pattern == 5)
        if plain_miss.any():
            s0[plain_miss] = cost.direct_ms_batch(
                AccessPoint.SERVER, sizes[plain_miss]
            )
        fp_rows = pattern == 4
        if fp_rows.any():
            for point in (AccessPoint.L2, AccessPoint.L3):
                rows = fp_rows & (aux_point == int(point))
                if rows.any():
                    s0[rows] = cost.probe_ms(point)
            s1[fp_rows] = cost.direct_ms_batch(
                AccessPoint.SERVER, sizes[fp_rows]
            )

        result_point = np.where(
            local_rows, 1, np.where(remote_rows, aux_point, 4)
        )
        flags = np.zeros(n, dtype=np.int64)
        holder = self._l1_all[idx].copy()
        if miss_rows.size:
            flags[miss_rows] = np.array(flag_list, dtype=np.int64)
            holder[miss_rows] = np.array(holder_list, dtype=np.int64)
        return _BatchResult(pattern, result_point, holder, flags, [s0, s1])

    def result_for(self, batch: _BatchResult, row: int) -> "AccessResult":
        from repro.obs.journey import Journey

        pattern = int(batch.pattern[row])
        s0 = float(batch.slot_costs[0][row])
        holder = int(batch.aux[row])
        journey = Journey()
        if pattern == 1:
            journey.local_lookup(s0, target=f"l1:{holder}")
            return journey.result(AccessPoint.L1, hit=True)
        if pattern == 2:
            journey.transfer(s0, target=f"l1:{holder}")
            return journey.result(
                AccessPoint(int(batch.point[row])), hit=True, remote_hit=True
            )
        if pattern == 4:
            journey.peer_probe(s0, target=f"l1:{holder}", wasted=True)
            journey.mark_false_positive()
            journey.origin_fetch(float(batch.slot_costs[1][row]))
            return journey.result(AccessPoint.SERVER, hit=False)
        if pattern == 5:
            journey.mark_false_negative()
        journey.origin_fetch(s0)
        return journey.result(AccessPoint.SERVER, hit=False)


class MessageHintKernel(_Kernel):
    """Vectorized path of :class:`MessageLevelHintHierarchy`.

    The state loop drives the same live :class:`HintCluster` -- packed
    per-node hint caches, batched updates, seeded flush jitter -- through
    ``find_nearest`` / ``local_inform``, so emergent pathologies (in-
    flight invalidations, set-conflict displacement) reproduce exactly.
    The architecture has no degraded request path, so the same loop
    serves quiescent fault windows.
    """

    P_LOCAL = 1
    P_REMOTE = 2
    P_MISS = 3
    P_MISS_FP = 4
    P_MISS_FN = 5

    STEP_TABLE = {
        1: ((0, "local_lookup", False),),
        2: ((0, "hint_lookup", False), (1, "transfer", False)),
        3: ((0, "origin_fetch", False),),
        4: ((0, "peer_probe", True), (1, "origin_fetch", False)),
        5: ((0, "origin_fetch", False),),
    }

    def __init__(self, architecture, columns, requests=None) -> None:
        super().__init__(architecture, columns, requests)
        topology = architecture.topology
        self._l1_all = topology.l1_of_clients(columns.client)
        self._dist_rows = topology.distance_matrix().tolist()
        self._l1_entries = [
            cache._entries if cache.capacity_bytes is None else None
            for cache in architecture.l1_caches
        ]

    def process_batch(self, idx: np.ndarray) -> _BatchResult:
        columns = self.columns
        times = columns.time[idx].tolist()
        oids = columns.object[idx].tolist()
        versions = columns.version[idx].tolist()
        sizes_list = columns.size[idx].tolist()
        l1_list = self._l1_all[idx].tolist()

        arch = self.arch
        caches = arch.l1_caches
        l1_entries = self._l1_entries
        cluster = arch.cluster
        find_nearest = cluster.find_nearest
        local_inform = cluster.local_inform
        hash_of = arch._hash_of
        other_holder_exists = arch._other_holder_exists
        dist_rows = self._dist_rows
        hit = LookupResult.HIT

        pattern_list = []
        miss_row_list = []
        holder_list = []
        aux_point_list = []
        flag_list = []
        p_append = pattern_list.append
        m_append = miss_row_list.append
        h_append = holder_list.append
        a_append = aux_point_list.append
        f_append = flag_list.append
        row = -1
        for t, oid, version, size, l1i in zip(
            times, oids, versions, sizes_list, l1_list
        ):
            row += 1
            entries = l1_entries[l1i]
            if entries is not None:
                entry = entries.get(oid)
                if entry is not None and entry.version >= version:
                    p_append(1)
                    continue
                arch._now = t
                cache = caches[l1i]
                if entry is not None:
                    cache.lookup(oid, version)  # STALE: invalidate + flush
            else:
                arch._now = t
                cache = caches[l1i]
                if cache.lookup(oid, version) is hit:
                    p_append(1)
                    continue
            m_append(row)
            url_hash = hash_of(oid)
            found = find_nearest(l1i, url_hash, t)
            holder = found.node if found is not None else None
            if holder is not None and holder != l1i:
                point = dist_rows[l1i][holder]
                if caches[holder].lookup(oid, version) is hit:
                    cache.insert(oid, size, version)
                    local_inform(l1i, url_hash, t)
                    p_append(2)
                    h_append(holder)
                    a_append(point)
                    f_append(FLAG_REMOTE_HIT)
                    continue
                arch.false_positive_probes += 1
                cache.insert(oid, size, version)
                local_inform(l1i, url_hash, t)
                p_append(4)
                h_append(holder)
                a_append(point)
                f_append(FLAG_FALSE_POSITIVE)
                continue
            false_negative = other_holder_exists(oid, version, l1i)
            if false_negative:
                arch.false_negative_misses += 1
            cache.insert(oid, size, version)
            local_inform(l1i, url_hash, t)
            if false_negative:
                p_append(5)
                f_append(FLAG_FALSE_NEGATIVE)
            else:
                p_append(3)
                f_append(0)
            h_append(-1)
            a_append(4)

        pattern = np.array(pattern_list, dtype=np.int64)
        n = len(pattern)
        miss_rows = np.array(miss_row_list, dtype=np.int64)
        aux_point = np.ones(n, dtype=np.int64)
        if miss_rows.size:
            aux_point[miss_rows] = np.array(aux_point_list, dtype=np.int64)
        sizes = columns.size[idx]
        cost = arch.cost_model
        hint_ms = cost.hint_lookup_ms()

        s0 = np.zeros(n, dtype=np.float64)
        s1 = np.zeros(n, dtype=np.float64)
        local_rows = pattern == 1
        if local_rows.any():
            s0[local_rows] = cost.via_l1_ms_batch(
                AccessPoint.L1, sizes[local_rows]
            )
        remote_rows = pattern == 2
        if remote_rows.any():
            s0[remote_rows] = hint_ms
            for point in (AccessPoint.L2, AccessPoint.L3):
                rows = remote_rows & (aux_point == int(point))
                if rows.any():
                    s1[rows] = cost.via_l1_ms_batch(point, sizes[rows])
        plain_miss = (pattern == 3) | (pattern == 5)
        if plain_miss.any():
            s0[plain_miss] = cost.via_l1_ms_batch(
                AccessPoint.SERVER, sizes[plain_miss]
            )
        fp_rows = pattern == 4
        if fp_rows.any():
            for point in (AccessPoint.L2, AccessPoint.L3):
                rows = fp_rows & (aux_point == int(point))
                if rows.any():
                    s0[rows] = cost.probe_ms(point)
            s1[fp_rows] = cost.via_l1_ms_batch(
                AccessPoint.SERVER, sizes[fp_rows]
            )

        result_point = np.where(
            local_rows, 1, np.where(remote_rows, aux_point, 4)
        )
        flags = np.zeros(n, dtype=np.int64)
        holder = self._l1_all[idx].copy()
        if miss_rows.size:
            flags[miss_rows] = np.array(flag_list, dtype=np.int64)
            holder[miss_rows] = np.array(holder_list, dtype=np.int64)
        return _BatchResult(pattern, result_point, holder, flags, [s0, s1])

    def result_for(self, batch: _BatchResult, row: int) -> "AccessResult":
        from repro.obs.journey import Journey

        pattern = int(batch.pattern[row])
        s0 = float(batch.slot_costs[0][row])
        s1 = float(batch.slot_costs[1][row])
        holder = int(batch.aux[row])
        journey = Journey()
        if pattern == 1:
            journey.local_lookup(s0, target=f"l1:{holder}")
            return journey.result(AccessPoint.L1, hit=True)
        if pattern == 2:
            journey.hint_lookup(s0, target=f"l1:{holder}")
            journey.transfer(s1, target=f"l1:{holder}")
            return journey.result(
                AccessPoint(int(batch.point[row])), hit=True, remote_hit=True
            )
        if pattern == 4:
            journey.peer_probe(s0, target=f"l1:{holder}", wasted=True)
            journey.mark_false_positive()
            journey.origin_fetch(s1)
            return journey.result(AccessPoint.SERVER, hit=False)
        if pattern == 5:
            journey.mark_false_negative()
        journey.origin_fetch(s0)
        return journey.result(AccessPoint.SERVER, hit=False)


def kernel_class_for(architecture: "Architecture"):
    """The vectorized kernel for this architecture, or ``None``.

    Exact-type matches only: subclasses may override ``process`` and must
    not silently inherit a kernel that bypasses their behavior.
    """
    from repro.hierarchy.client_hints import ClientHintHierarchy
    from repro.hierarchy.data_hierarchy import DataHierarchy
    from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
    from repro.hierarchy.hint_hierarchy import HintHierarchy
    from repro.hierarchy.icp import IcpHierarchy
    from repro.hierarchy.message_hints import MessageLevelHintHierarchy

    kind = type(architecture)
    if kind is DataHierarchy:
        return HierarchyKernel
    if kind is IcpHierarchy:
        return IcpKernel
    if kind is HintHierarchy:
        if (
            architecture.push_policy is None
            and not architecture.charge_remote_as_l1
        ):
            return HintKernel
        return PushHintKernel
    if kind is CentralizedDirectoryArchitecture:
        return DirectoryKernel
    if kind is ClientHintHierarchy:
        return ClientHintKernel
    if kind is MessageLevelHintHierarchy:
        return MessageHintKernel
    return None


def fast_unsupported_reason(architecture: "Architecture") -> str | None:
    """Why the vectorized path cannot drive this architecture (or None)."""
    if kernel_class_for(architecture) is None:
        return (
            f"no vectorized kernel for architecture {architecture.name!r} "
            f"({type(architecture).__name__}); supported: hierarchy, icp, "
            "hints (plain, push, and ideal-push), directory, client-hints, "
            "and hints-message-level"
        )
    return None


def run_fast_simulation(
    trace: "Trace",
    architecture: "Architecture",
    *,
    warmup_s: float | None = None,
    include_uncachable: bool = False,
    fault_plan: "FaultPlan | None" = None,
    journey_sink: "JourneySink | None" = None,
    telemetry: "RunTelemetry | None" = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> SimMetrics:
    """Columnar twin of :func:`repro.sim.engine.run_simulation`.

    Accepts configurations the vectorized kernels cover, including fault
    plans: the trace is additionally split at fault-event edges, quiescent
    spans run the kernels, and active windows fall back to a per-request
    loop over ``architecture.process``.  Audit hooks (and architectures
    carrying pre-attached fault/audit state) still dispatch to the
    reference loop via the engine.  Returns byte-identical
    :class:`SimMetrics`.
    """
    if batch_size < 1:
        raise ValueError(f"batch size must be positive, got {batch_size}")
    kernel_cls = kernel_class_for(architecture)
    if kernel_cls is None:
        raise ValueError(fast_unsupported_reason(architecture))
    if architecture.faults is not None or architecture.audit is not None:
        raise ValueError(
            "fast engine drives healthy or plan-scheduled runs on a freshly "
            "built architecture; pass fault schedules via fault_plan= "
            "(pre-attached fault state and audit hooks dispatch to the "
            "reference loop)"
        )
    injector: "FaultInjector | None" = None
    if fault_plan is not None and fault_plan:
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(fault_plan)
        injector.bind(architecture)
    boundary = trace.warmup if warmup_s is None else warmup_s
    metrics = SimMetrics(
        architecture=architecture.name,
        cost_model=architecture.cost_model.name,
    )
    columns = trace.columns()
    n = len(columns)
    if telemetry is not None:
        telemetry.begin(architecture, injector=injector)

    time_col = columns.time
    error = columns.error
    uncachable = (~columns.cacheable) & (~error)
    if include_uncachable:
        metrics.included_error = int(error.sum())
        metrics.included_uncachable = int(uncachable.sum())
        process = np.ones(n, dtype=bool)
    else:
        metrics.skipped_error = int(error.sum())
        metrics.skipped_uncachable = int(uncachable.sum())
        process = ~(error | uncachable)
    measured_mask = process & (time_col >= boundary)
    processed_total = int(process.sum())
    metrics.warmup_requests = processed_total - int(measured_mask.sum())

    # Batch spans: fixed-size chunks, additionally split at telemetry bin
    # edges so each span's clock advance (and therefore every bin-close
    # snapshot) lands exactly where the per-request engine would put it,
    # and at fault-event edges so no span straddles an injector state
    # change (events fire during the advance at a span's start, exactly
    # when the reference's per-request advance would fire them).
    edges = set(range(0, n, batch_size))
    if telemetry is not None and n:
        bins = (time_col // telemetry.bin_s).astype(np.int64)
        edges.update((np.flatnonzero(np.diff(bins) != 0) + 1).tolist())
    if injector is not None and n:
        for event in fault_plan.events:
            e = int(np.searchsorted(time_col, event.time, side="left"))
            if 0 < e < n:
                edges.add(e)
    span_edges = sorted(edges) + [n]

    needs_requests = (
        journey_sink is not None
        or injector is not None
        or kernel_cls.NEEDS_REQUESTS
    )
    requests = trace.requests if needs_requests else None
    kernel = kernel_cls(architecture, columns, requests=requests)
    kind_table = kernel._kind_table()
    sizes_col = columns.size

    # Host profiler: resolved once per run (one pointer check when
    # detached); attached runs get one "batch" span per quiescent span
    # with classify / fold / decode children and hit-miss attributes.
    profiler = profiling.active()

    for start, stop in zip(span_edges, span_edges[1:]):
        if start >= stop:
            continue
        if telemetry is not None:
            telemetry.advance(float(time_col[start]))
        if injector is not None:
            injector.advance(float(time_col[start]))
        idx = np.flatnonzero(process[start:stop]) + start
        if idx.size == 0:
            continue
        if injector is not None:
            if injector.faults_active:
                # Active window: the vectorized residual is this span's
                # per-request loop (the reference loop body, verbatim).
                if profiler is None:
                    _run_residual_span(
                        metrics,
                        architecture,
                        requests,
                        idx,
                        boundary,
                        telemetry,
                        journey_sink,
                    )
                else:
                    with profiler.span(
                        "residual_replay", category="fastpath", rows=int(idx.size)
                    ):
                        _run_residual_span(
                            metrics,
                            architecture,
                            requests,
                            idx,
                            boundary,
                            telemetry,
                            journey_sink,
                        )
                continue
            kernel.span_begin()
        if profiler is None:
            batch = kernel.process_batch(idx)
            span_measured = measured_mask[idx]
            measured_before = metrics.measured_requests
            _fold_measured(
                metrics,
                batch,
                span_measured,
                sizes_col[idx],
                kernel.STEP_TABLE,
                kind_table,
            )
            if telemetry is not None:
                _observe_span(telemetry, batch, span_measured, sizes_col[idx])
            if journey_sink is not None:
                for offset, row in enumerate(np.flatnonzero(span_measured).tolist()):
                    result = kernel.result_for(batch, row)
                    journey_sink.emit(
                        measured_before + offset, requests[int(idx[row])], result
                    )
            continue
        with profiler.span(
            "batch", category="fastpath", rows=int(idx.size)
        ) as batch_span:
            with profiler.span("classify", category="fastpath", rows=int(idx.size)):
                batch = kernel.process_batch(idx)
            hits = int((batch.point == int(AccessPoint.L1)).sum())
            batch_span.attrs["l1_hits"] = hits
            batch_span.attrs["l1_misses"] = int(idx.size) - hits
            span_measured = measured_mask[idx]
            measured_before = metrics.measured_requests
            with profiler.span("metrics_fold", category="fastpath"):
                _fold_measured(
                    metrics,
                    batch,
                    span_measured,
                    sizes_col[idx],
                    kernel.STEP_TABLE,
                    kind_table,
                )
            if telemetry is not None:
                with profiler.span("telemetry_decode", category="fastpath"):
                    _observe_span(telemetry, batch, span_measured, sizes_col[idx])
            if journey_sink is not None:
                with profiler.span("journey_decode", category="fastpath"):
                    for offset, row in enumerate(
                        np.flatnonzero(span_measured).tolist()
                    ):
                        result = kernel.result_for(batch, row)
                        journey_sink.emit(
                            measured_before + offset, requests[int(idx[row])], result
                        )

    architecture.processed_requests += processed_total
    if telemetry is not None:
        telemetry.finish(trace.duration)
    metrics.validate(expected_requests=n)
    return metrics


def _run_residual_span(
    metrics: SimMetrics,
    architecture: "Architecture",
    requests,
    idx: np.ndarray,
    boundary: float,
    telemetry: "RunTelemetry | None",
    journey_sink: "JourneySink | None",
) -> None:
    """Per-request fallback for one active fault window.

    Mirrors the reference loop's body exactly.  Span edges include every
    fault-event time, so no event fires mid-span (the per-request clock
    advances the reference performs here are no-ops) and the window is
    faulted throughout.  Warmup and skip counters are precomputed by the
    driver; only measured accounting happens here.
    """
    process = architecture.process
    record = metrics.record
    for i in idx.tolist():
        request = requests[i]
        result = process(request)
        if request.time < boundary:
            if telemetry is not None:
                telemetry.observe(request, result, measured=False)
            continue
        record(result, request.size, faulted=True)
        if telemetry is not None:
            telemetry.observe(request, result, measured=True)
        if journey_sink is not None:
            journey_sink.emit(metrics.measured_requests - 1, request, result)


def _fold_measured(
    metrics: SimMetrics,
    batch: _BatchResult,
    measured: np.ndarray,
    sizes: np.ndarray,
    step_table,
    kind_table,
) -> None:
    """Fold one batch's measured rows into SimMetrics, bit-identically."""
    count = int(measured.sum())
    if count == 0:
        return
    times = batch.time_ms[measured]
    points = batch.point[measured]
    flags = batch.flags[measured]
    msizes = sizes[measured]

    metrics.measured_requests += count
    metrics.total_ms = _sequential_sum(metrics.total_ms, times)
    metrics.latency.bulk_record(times)
    point_counts = np.bincount(points, minlength=5)
    for point in AccessPoint:
        hits = int(point_counts[int(point)])
        if hits:
            metrics.requests_by_point[point] += hits
            metrics.bytes_by_point[point] += int(msizes[points == int(point)].sum())
    metrics.remote_hits += int((flags & FLAG_REMOTE_HIT != 0).sum())
    metrics.false_positives += int((flags & FLAG_FALSE_POSITIVE != 0).sum())
    metrics.false_negatives += int((flags & FLAG_FALSE_NEGATIVE != 0).sum())
    metrics.suboptimal_positives += int((flags & FLAG_SUBOPTIMAL != 0).sum())
    metrics.push_hits += int((flags & FLAG_PUSH_HIT != 0).sum())
    metrics.degraded.stale_hint_forwards += int(
        (flags & FLAG_STALE_FORWARD != 0).sum()
    )
    metrics.journeyed_requests += count

    # Per-kind step fold.  Aggregates are created in first-seen order
    # (row-major, then slot order within a row) so rendered decomposition
    # tables iterate kinds exactly as the reference engine built them.
    patterns = batch.pattern[measured]
    steps = metrics.steps
    first_seen: dict[str, int] = {}
    for pattern, slots in step_table.items():
        rows = np.flatnonzero(patterns == pattern)
        if rows.size == 0:
            continue
        ordinal_base = int(rows[0]) * 4
        for slot, kind, _wasted in slots:
            if kind not in steps:
                ordinal = ordinal_base + slot
                if kind not in first_seen or ordinal < first_seen[kind]:
                    first_seen[kind] = ordinal
    for kind, _ in sorted(first_seen.items(), key=lambda item: item[1]):
        steps[kind] = StepAggregate(kind=kind)

    n_rows = len(patterns)
    measured_slot_costs = [costs[measured] for costs in batch.slot_costs]
    for kind, occurrences in kind_table.items():
        # A pattern may carry the same kind more than once (e.g. the
        # directory's stale forward probes the directory *and* the dead
        # holder).  The reference folds steps row-major, journey order
        # within a row -- so lay costs out as (row, occurrence) and
        # flatten.
        occ_by_pattern: dict[int, list[tuple[int, bool]]] = {}
        for pattern, slot, wasted in occurrences:
            occ_by_pattern.setdefault(pattern, []).append((slot, wasted))
        width = max(len(slots) for slots in occ_by_pattern.values())
        valid = np.zeros((n_rows, width), dtype=bool)
        cost_grid = np.zeros((n_rows, width), dtype=np.float64)
        wasted_count = 0
        for pattern, slots in occ_by_pattern.items():
            rows = patterns == pattern
            if not rows.any():
                continue
            for occurrence, (slot, wasted) in enumerate(slots):
                valid[rows, occurrence] = True
                cost_grid[rows, occurrence] = measured_slot_costs[slot][rows]
                if wasted:
                    wasted_count += int(rows.sum())
        flat_valid = valid.ravel()
        if not flat_valid.any():
            continue
        costs = cost_grid.ravel()[flat_valid]
        agg = steps[kind]
        agg.count += len(costs)
        agg.total_ms = _sequential_sum(agg.total_ms, costs)
        agg.wasted += wasted_count
        agg.latency.bulk_record(costs)
        # agg.fault_ms stays 0.0: quiescent steps charge fault_ms == 0.0
        # and x += 0.0 is the identity for the fault ledger's
        # non-negatives (active windows fold through metrics.record).


def _observe_span(
    telemetry: "RunTelemetry",
    batch: _BatchResult,
    span_measured: np.ndarray,
    sizes: np.ndarray,
) -> None:
    """Decode one span's rows into telemetry observations, in row order."""
    observe = telemetry.observe_values
    points = batch.point.tolist()
    times = batch.time_ms.tolist()
    flags = batch.flags.tolist()
    size_list = sizes.tolist()
    measured_list = span_measured.tolist()
    for point, time_ms, flag, size, measured in zip(
        points, times, flags, size_list, measured_list
    ):
        observe(
            point=point,
            size=size,
            time_ms=time_ms,
            remote_hit=bool(flag & FLAG_REMOTE_HIT),
            false_positive=bool(flag & FLAG_FALSE_POSITIVE),
            false_negative=bool(flag & FLAG_FALSE_NEGATIVE),
            suboptimal_positive=bool(flag & FLAG_SUBOPTIMAL),
            push_hit=bool(flag & FLAG_PUSH_HIT),
            stale_hint_forward=bool(flag & FLAG_STALE_FORWARD),
            measured=measured,
        )
