"""Trace-driven simulation driver.

One call = one architecture over one trace:

* requests before the warmup boundary are processed (caches fill, hints
  propagate) but not measured -- the paper warms caches on the first two
  days of each trace;
* uncachable and error requests are excluded from response-time results
  ("for the remainder of this study, we do not include Uncachable or Error
  requests in our results", section 2.2.2) but are counted so the
  exclusion is visible;
* every measured request's :class:`~repro.hierarchy.base.AccessResult`
  feeds one :class:`~repro.sim.metrics.SimMetrics`.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING

from repro.hierarchy.base import Architecture
from repro.obs import profiling
from repro.sim.metrics import SimMetrics
from repro.traces.records import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.audit.hooks import AuditHooks
    from repro.faults.events import FaultPlan
    from repro.obs.sink import JourneySink
    from repro.obs.telemetry import RunTelemetry


def run_simulation(
    trace: Trace,
    architecture: Architecture,
    *,
    warmup_s: float | None = None,
    include_uncachable: bool = False,
    fault_plan: "FaultPlan | None" = None,
    journey_sink: "JourneySink | None" = None,
    telemetry: "RunTelemetry | None" = None,
    audit: "AuditHooks | None" = None,
    engine: str = "reference",
) -> SimMetrics:
    """Drive ``architecture`` over ``trace`` and return aggregated metrics.

    Args:
        trace: Time-ordered workload.
        architecture: The cache system under test (mutated by the run).
        warmup_s: Measurement starts at this time; defaults to the trace's
            own warmup boundary.
        include_uncachable: Process uncachable/error requests through the
            architecture instead of skipping them.  The paper's evaluation
            skips them (counted under ``metrics.skipped_*``); when
            processed anyway they are counted under ``metrics.included_*``
            instead.  Figure 2 (miss taxonomy) is computed by the
            dedicated classifier, not through this engine.
        fault_plan: Optional deterministic fault schedule
            (:class:`repro.faults.events.FaultPlan`).  A fresh
            :class:`~repro.faults.injector.FaultInjector` replays it
            against this run: crash/recover events fire as simulation
            time passes each event, the architecture serves requests in
            degraded mode, and ``metrics.degraded`` accounts for the
            damage.  ``None`` (the default) takes the original code path
            and produces byte-identical metrics to a build without fault
            support.
        journey_sink: Optional :class:`repro.obs.sink.JourneySink`
            receiving every measured request with its ledger-derived
            result (warmup and skipped requests are not emitted).  The
            caller keeps ownership: the engine never closes it, so one
            sink can span several runs.  ``None`` (the default) costs a
            single predicate per measured request.
        telemetry: Optional :class:`repro.obs.telemetry.RunTelemetry`.
            When present, the engine advances its timeline with the
            simulated clock (closing fixed-width bins as time passes),
            accounts every processed request into per-window counters
            (``warmup``/``measured`` -- the measured slice reconciles
            exactly with this function's return value), and closes the
            final bin at ``trace.duration``.  The timeline is advanced
            *before* the fault injector, so bin-close snapshots observe
            the plan state as of the bin edge.  ``None`` (the default)
            costs one pointer check per site; telemetry output never
            feeds run fingerprints or golden snapshots.
        audit: Optional :class:`repro.audit.hooks.AuditHooks`.  When
            present, the engine (and, through attachment, the
            architecture and its caches) verifies runtime invariants at
            checkpoints -- cache byte accounting, hint/ground-truth
            agreement, journey-ledger exact sums, counter partitions,
            telemetry telescoping -- raising
            :class:`repro.audit.hooks.AuditError` on the first breakage.
            ``None`` (the default) costs one pointer check per site and
            leaves results byte-identical to an un-audited run.
        engine: ``"reference"`` (default) runs the per-request loop below.
            ``"fast"`` runs :mod:`repro.sim.fastpath`'s columnar batch
            engine, which produces byte-identical metrics.  Fault plans
            are vectorized too: the batch driver splits spans at every
            scheduled event and falls back to a per-request residual only
            inside active fault windows.  Audit hooks (checkpoints walk
            live state between requests) and architectures carrying
            pre-attached fault/audit state still dispatch back to this
            loop; an architecture without a vectorized kernel raises.
            ``"auto"`` is ``"fast"`` where supported and ``"reference"``
            otherwise, never raising.
    """
    if engine not in ("reference", "fast", "auto"):
        raise ValueError(
            f"unknown engine {engine!r}; expected 'reference', 'fast', or 'auto'"
        )
    profiler = profiling.active()
    if profiler is None:
        return _run_simulation(
            trace,
            architecture,
            warmup_s=warmup_s,
            include_uncachable=include_uncachable,
            fault_plan=fault_plan,
            journey_sink=journey_sink,
            telemetry=telemetry,
            audit=audit,
            engine=engine,
        )
    with profiler.span(
        "simulate",
        category="engine",
        arch=architecture.name,
        engine=engine,
        requests=len(trace.requests),
    ) as span:
        metrics = _run_simulation(
            trace,
            architecture,
            warmup_s=warmup_s,
            include_uncachable=include_uncachable,
            fault_plan=fault_plan,
            journey_sink=journey_sink,
            telemetry=telemetry,
            audit=audit,
            engine=engine,
        )
        span.attrs["measured_requests"] = metrics.measured_requests
    return metrics


def _run_simulation(
    trace: Trace,
    architecture: Architecture,
    *,
    warmup_s: float | None,
    include_uncachable: bool,
    fault_plan: "FaultPlan | None",
    journey_sink: "JourneySink | None",
    telemetry: "RunTelemetry | None",
    audit: "AuditHooks | None",
    engine: str,
) -> SimMetrics:
    """:func:`run_simulation` body, shared by the profiled/unprofiled entry."""
    if engine != "reference":
        from repro.sim import fastpath

        reason = fastpath.fast_unsupported_reason(architecture)
        if reason is not None:
            if engine == "fast":
                raise ValueError(reason)
        elif (
            audit is None
            and architecture.faults is None
            and architecture.audit is None
        ):
            return fastpath.run_fast_simulation(
                trace,
                architecture,
                warmup_s=warmup_s,
                include_uncachable=include_uncachable,
                fault_plan=fault_plan,
                journey_sink=journey_sink,
                telemetry=telemetry,
            )
        # Residual dispatch: audit checkpoints (and pre-attached fault or
        # audit state) run the per-request loop below -- the fastpath
        # module's sanctioned residual.
    stepper = SimulationStepper(
        trace,
        architecture,
        warmup_s=warmup_s,
        include_uncachable=include_uncachable,
        fault_plan=fault_plan,
        journey_sink=journey_sink,
        telemetry=telemetry,
        audit=audit,
    )
    # The profiler, like the other observers, costs one pointer check per
    # run when detached; the loop itself is never touched per-request.
    profiler = profiling.active()
    loop_span = (
        profiler.span("reference_loop", category="engine", requests=len(trace.requests))
        if profiler is not None
        else nullcontext()
    )
    with loop_span:
        stepper.advance()
    return stepper.finish()


class SimulationStepper:
    """Incremental form of the reference loop: run a simulation in slices.

    Construction performs the run prologue (metrics, fault injector,
    ``telemetry.begin``/``audit.begin``); :meth:`advance` processes every
    request with ``time <= until`` (all remaining for ``until=None``); and
    :meth:`finish` -- legal only once the trace is drained -- performs the
    epilogue and returns the :class:`~repro.sim.metrics.SimMetrics`.  A
    full-drain ``advance()`` followed by ``finish()`` is the reference
    loop, request for request: :func:`run_simulation` itself runs through
    this class.

    The slicing exists for the sharded runner's bounded-lag virtual
    clock: a worker holding several partitions round-robins their
    steppers in fixed partition order, advancing each to a shared time
    horizon, so no partition's clock ever runs more than the lag window
    ahead of the slowest -- cross-partition interleaving can never
    reorder any observable state transition.
    """

    def __init__(
        self,
        trace: Trace,
        architecture: Architecture,
        *,
        warmup_s: float | None = None,
        include_uncachable: bool = False,
        fault_plan: "FaultPlan | None" = None,
        journey_sink: "JourneySink | None" = None,
        telemetry: "RunTelemetry | None" = None,
        audit: "AuditHooks | None" = None,
    ) -> None:
        self.trace = trace
        self.architecture = architecture
        self._boundary = trace.warmup if warmup_s is None else warmup_s
        self._include_uncachable = include_uncachable
        self.metrics = SimMetrics(
            architecture=architecture.name,
            cost_model=architecture.cost_model.name,
        )
        self._injector = None
        if fault_plan is not None and fault_plan:
            from repro.faults.injector import FaultInjector

            self._injector = FaultInjector(fault_plan)
            self._injector.bind(architecture)
        self._journey_sink = journey_sink
        self._telemetry = telemetry
        self._audit = audit
        if telemetry is not None:
            telemetry.begin(architecture, injector=self._injector)
        if audit is not None:
            audit.begin(
                architecture,
                trace,
                injector=self._injector,
                include_uncachable=include_uncachable,
            )
        self._iterator = iter(trace.requests)
        self._pending = next(self._iterator, None)
        self._processed = 0
        self._finished = False

    @property
    def next_time(self) -> float | None:
        """Simulated time of the next unprocessed request (None = drained)."""
        return self._pending.time if self._pending is not None else None

    @property
    def exhausted(self) -> bool:
        """True once every trace request has passed through :meth:`advance`."""
        return self._pending is None

    def advance(self, until: float | None = None) -> int:
        """Process every remaining request with ``time <= until``.

        ``None`` drains the trace.  Returns the number of requests the
        architecture processed in this slice (skipped uncachable/error
        requests advance the clock but do not count).
        """
        if self._finished:
            raise ValueError("stepper already finished")
        metrics = self.metrics
        architecture = self.architecture
        telemetry = self._telemetry
        injector = self._injector
        audit = self._audit
        journey_sink = self._journey_sink
        boundary = self._boundary
        include_uncachable = self._include_uncachable
        done = 0
        request = self._pending
        while request is not None and (until is None or request.time <= until):
            # The simulated clock advances with *every* request, skipped or
            # not: timeline bins close and scheduled crash/recover events
            # fire as trace time passes, never stalled behind a run of
            # skipped requests.  (Timeline before injector, so bin-close
            # snapshots observe the plan state as of the bin edge.)
            if telemetry is not None:
                telemetry.advance(request.time)
            if injector is not None:
                injector.advance(request.time)
            skip = False
            if request.error:
                if not include_uncachable:
                    metrics.skipped_error += 1
                    skip = True
                else:
                    metrics.included_error += 1
            elif not request.cacheable:
                # ``elif``: a request that is both error and uncachable counts
                # once, under its error class -- mirroring the skip path's
                # precedence so the two counter pairs partition identically.
                if not include_uncachable:
                    metrics.skipped_uncachable += 1
                    skip = True
                else:
                    metrics.included_uncachable += 1
            if not skip:
                result = architecture.process(request)
                done += 1
                if audit is not None:
                    audit.on_result(
                        request, result, measured=request.time >= boundary
                    )
                if request.time < boundary:
                    metrics.warmup_requests += 1
                    if telemetry is not None:
                        telemetry.observe(request, result, measured=False)
                else:
                    metrics.record(
                        result,
                        request.size,
                        faulted=injector is not None and injector.faults_active,
                    )
                    if telemetry is not None:
                        telemetry.observe(request, result, measured=True)
                    if journey_sink is not None:
                        journey_sink.emit(
                            metrics.measured_requests - 1, request, result
                        )
            request = next(self._iterator, None)
        self._pending = request
        self._processed += done
        return done

    def finish(self) -> SimMetrics:
        """Run epilogue: close observers, validate, return metrics (idempotent)."""
        if self._finished:
            return self.metrics
        if self._pending is not None:
            raise ValueError(
                f"cannot finish with a request pending at "
                f"t={self._pending.time}; advance() until exhausted first"
            )
        self.architecture.processed_requests += self._processed
        if self._telemetry is not None:
            self._telemetry.finish(self.trace.duration)
        if self._audit is not None:
            self._audit.finish(self.metrics, telemetry=self._telemetry)
        self.metrics.validate(expected_requests=len(self.trace.requests))
        self._finished = True
        return self.metrics


def run_comparison(
    trace: Trace,
    architectures: list[Architecture],
    *,
    warmup_s: float | None = None,
    include_uncachable: bool = False,
    fault_plan: "FaultPlan | None" = None,
    journey_sink: "JourneySink | None" = None,
    audit: "AuditHooks | None" = None,
    engine: str = "reference",
) -> dict[str, SimMetrics]:
    """Run several architectures over the same trace (fresh state each).

    Returns metrics keyed by architecture name, in input order (dicts
    preserve insertion order).  Architectures must be freshly constructed;
    reusing a warmed architecture would bias the comparison, so any
    instance that has already processed requests is rejected.

    ``fault_plan`` applies the same schedule to every architecture (each
    gets its own injector, so stochastic hint-loss draws are identical
    across them -- the comparison stays apples-to-apples).
    ``include_uncachable``, ``journey_sink``, and ``audit`` forward to
    every per-architecture :func:`run_simulation`, so the serial
    comparison exposes the same knobs as a single run (and as the
    parallel twin); the sink's ``architecture`` label is restamped
    before each run, so one sink collects all architectures' journeys
    distinguishably, and one :class:`~repro.audit.hooks.AuditHooks`
    re-binds to each architecture in turn (``begin`` resets it).
    """
    results: dict[str, SimMetrics] = {}
    for architecture in architectures:
        if architecture.name in results:
            raise ValueError(f"duplicate architecture name {architecture.name!r}")
        already = architecture.processed_requests
        if already:
            raise ValueError(
                f"architecture {architecture.name!r} has already processed "
                f"{already} requests; comparisons need freshly constructed "
                "architectures (reuse would bias results)"
            )
        if journey_sink is not None:
            journey_sink.architecture = architecture.name
        results[architecture.name] = run_simulation(
            trace,
            architecture,
            warmup_s=warmup_s,
            include_uncachable=include_uncachable,
            fault_plan=fault_plan,
            journey_sink=journey_sink,
            audit=audit,
            engine=engine,
        )
    return results
