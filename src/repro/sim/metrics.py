"""Aggregated simulation results.

The paper's headline metric is **mean response time** over the measured
window (warmup excluded, uncachable/error requests excluded per section
2.2.2).  Hit ratios by access point, hint pathology counts, and byte
traffic are kept alongside so every figure can be derived from one run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hierarchy.base import AccessResult
from repro.netmodel.model import AccessPoint


class LatencyHistogram:
    """Log-scale response-time histogram for percentile queries.

    The paper reports means; a deployment engineer also wants tails, so
    the metrics keep a compact histogram (~3% relative resolution) instead
    of storing every sample.  Bin ``i`` covers
    ``[10**(i/BINS_PER_DECADE - 1), 10**((i+1)/BINS_PER_DECADE - 1))`` ms.
    """

    BINS_PER_DECADE = 32
    #: Covers 0.1 ms .. 10^6 ms in log-scale bins.
    _N_BINS = BINS_PER_DECADE * 7

    def __init__(self) -> None:
        self._bins = [0] * self._N_BINS
        self._count = 0

    def record(self, ms: float) -> None:
        """Add one sample (values below 0.1 ms clamp into the first bin)."""
        if ms < 0:
            raise ValueError(f"latency must be non-negative, got {ms}")
        position = (math.log10(ms) + 1.0) * self.BINS_PER_DECADE if ms > 0.1 else 0.0
        index = min(self._N_BINS - 1, max(0, int(position)))
        self._bins[index] += 1
        self._count += 1

    def bulk_record(self, values) -> None:
        """Record a float array of samples, bin-identical to a record() loop.

        Binning is vectorized with ``np.log10``, then every distinct value
        whose position lands within ``1e-6`` of a bin boundary is re-binned
        through the *same scalar formula* as :meth:`record`.  NumPy's and
        libm's ``log10`` agree to a few ulps (absolute position error
        ``< 1e-12`` over the histogram's range), so any value outside that
        guard band truncates to the same bin under both -- the scalar
        recheck covers the only cases where they could differ.
        """
        import numpy as np

        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        if float(values.min()) < 0:
            raise ValueError("latency must be non-negative")
        unique, inverse = np.unique(values, return_inverse=True)
        bpd = self.BINS_PER_DECADE
        top = self._N_BINS - 1
        big = unique > 0.1
        position = np.zeros(len(unique), dtype=np.float64)
        position[big] = (np.log10(unique[big]) + 1.0) * bpd
        indices = np.minimum(top, position.astype(np.int64))
        fraction = position - np.floor(position)
        suspect = big & ((fraction < 1e-6) | (fraction > 1.0 - 1e-6))
        for i in np.flatnonzero(suspect).tolist():
            ms = float(unique[i])
            scalar_position = (math.log10(ms) + 1.0) * bpd
            indices[i] = min(top, max(0, int(scalar_position)))
        counts = np.bincount(indices[inverse], minlength=self._N_BINS)
        bins = self._bins
        for index in np.flatnonzero(counts).tolist():
            bins[index] += int(counts[index])
        self._count += int(values.size)

    def __len__(self) -> int:
        return self._count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return self._count == other._count and self._bins == other._bins

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram into this one (elementwise bin sums).

        Exact: bins hold integer counts, so the fold is associative and
        commutative -- merging per-shard histograms in any order equals
        the unsharded histogram.
        """
        bins = self._bins
        for index, count in enumerate(other._bins):
            if count:
                bins[index] += count
        self._count += other._count

    def percentile(self, fraction: float) -> float:
        """The response time at the given quantile (0 < fraction <= 1).

        Returns the upper edge of the bin containing the quantile sample,
        so the estimate is conservative (never under-reports the tail).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if self._count == 0:
            return 0.0
        target = math.ceil(fraction * self._count)
        seen = 0
        for index, count in enumerate(self._bins):
            seen += count
            if seen >= target:
                return 10 ** ((index + 1) / self.BINS_PER_DECADE - 1.0)
        return 10 ** (self._N_BINS / self.BINS_PER_DECADE - 1.0)


@dataclass
class DegradedMetrics:
    """Degraded-mode counters (all zero unless faults were injected).

    The paper's graceful-degradation story (section 3.4) needs numbers:
    how many requests ran during failure windows, how often stale
    metadata forwarded a request to a dead node, how often a timeout
    fallback saved the request, and how much response time the faults
    added in total.  ``fault_added_ms`` is additive decomposition, not
    estimate: every fault-aware charge splits into (healthy charge,
    surcharge) at the point it is computed.
    """

    faulted_requests: int = 0
    stale_hint_forwards: int = 0
    timeout_fallbacks: int = 0
    fault_added_ms: float = 0.0

    def __bool__(self) -> bool:
        """True when any degradation was recorded."""
        return (
            self.faulted_requests > 0
            or self.stale_hint_forwards > 0
            or self.timeout_fallbacks > 0
            or self.fault_added_ms > 0.0
        )

    def merge(self, other: "DegradedMetrics") -> None:
        """Fold another run's (or shard's) degraded counters into this one."""
        self.faulted_requests += other.faulted_requests
        self.stale_hint_forwards += other.stale_hint_forwards
        self.timeout_fallbacks += other.timeout_fallbacks
        self.fault_added_ms += other.fault_added_ms

    def summary(self) -> dict[str, float]:
        """Flat dict for table rendering (mirrors ``SimMetrics.summary``)."""
        return {
            "faulted_requests": float(self.faulted_requests),
            "stale_hint_forwards": float(self.stale_hint_forwards),
            "timeout_fallbacks": float(self.timeout_fallbacks),
            "fault_added_ms": self.fault_added_ms,
        }


@dataclass
class StepAggregate:
    """Per-step-kind totals over every journey of the measured window.

    One instance per :class:`repro.obs.journey.StepKind` that actually
    occurred; together they decompose ``SimMetrics.total_ms`` into where
    the milliseconds went (probe vs. traversal vs. origin fetch), which is
    what :func:`repro.reporting.tables.format_decomposition_table` renders.
    """

    kind: str = ""
    count: int = 0
    total_ms: float = 0.0
    fault_ms: float = 0.0
    wasted: int = 0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def mean_ms(self) -> float:
        """Mean per-step cost (0 when the kind never occurred)."""
        if self.count == 0:
            return 0.0
        return self.total_ms / self.count

    def merge(self, other: "StepAggregate") -> None:
        """Fold another aggregate of the same step kind into this one."""
        if other.kind != self.kind:
            raise ValueError(
                f"cannot merge step kind {other.kind!r} into {self.kind!r}"
            )
        self.count += other.count
        self.total_ms += other.total_ms
        self.fault_ms += other.fault_ms
        self.wasted += other.wasted
        self.latency.merge(other.latency)


@dataclass
class SimMetrics:
    """Counters accumulated over the measured window of one simulation.

    ``skipped_error``/``skipped_uncachable`` count requests the run
    *excluded* (the paper's section 2.2.2 default); ``included_error``/
    ``included_uncachable`` count the same request classes when
    ``include_uncachable=True`` processed them anyway.  For any single
    run one of the two pairs is all zeros.
    """

    architecture: str = ""
    cost_model: str = ""
    measured_requests: int = 0
    warmup_requests: int = 0
    skipped_uncachable: int = 0
    skipped_error: int = 0
    included_uncachable: int = 0
    included_error: int = 0
    total_ms: float = 0.0
    requests_by_point: dict[AccessPoint, int] = field(
        default_factory=lambda: {p: 0 for p in AccessPoint}
    )
    bytes_by_point: dict[AccessPoint, int] = field(
        default_factory=lambda: {p: 0 for p in AccessPoint}
    )
    remote_hits: int = 0
    push_hits: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    suboptimal_positives: int = 0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    degraded: DegradedMetrics = field(default_factory=DegradedMetrics)
    #: Per-step-kind latency decomposition, keyed by ``StepKind.value``
    #: (only kinds that occurred appear).  Populated from each result's
    #: journey ledger; ``journeyed_requests`` counts how many measured
    #: results carried one (test stubs may build ledger-free results).
    steps: dict[str, StepAggregate] = field(default_factory=dict)
    journeyed_requests: int = 0

    def record(self, result: AccessResult, size: int, *, faulted: bool = False) -> None:
        """Accumulate one measured-window access result.

        ``faulted`` marks requests processed while the run's fault
        injector had any fault in force (the engine passes it; plan-free
        runs never set it).
        """
        self.measured_requests += 1
        self.total_ms += result.time_ms
        self.latency.record(result.time_ms)
        self.requests_by_point[result.point] += 1
        self.bytes_by_point[result.point] += size
        if result.remote_hit:
            self.remote_hits += 1
        if result.push_hit:
            self.push_hits += 1
        if result.false_positive:
            self.false_positives += 1
        if result.false_negative:
            self.false_negatives += 1
        if result.suboptimal_positive:
            self.suboptimal_positives += 1
        if faulted:
            self.degraded.faulted_requests += 1
        if result.timeout_fallback:
            self.degraded.timeout_fallbacks += 1
        if result.stale_hint_forward:
            self.degraded.stale_hint_forwards += 1
        if result.fault_added_ms:
            self.degraded.fault_added_ms += result.fault_added_ms
        journey = result.journey
        if journey is not None:
            self.journeyed_requests += 1
            steps = self.steps
            for step in journey.steps:
                agg = steps.get(step.kind.value)
                if agg is None:
                    agg = steps[step.kind.value] = StepAggregate(kind=step.kind.value)
                agg.count += 1
                agg.total_ms += step.cost_ms
                agg.fault_ms += step.fault_ms
                if step.wasted:
                    agg.wasted += 1
                agg.latency.record(step.cost_ms)

    def merge(self, other: "SimMetrics") -> None:
        """Fold another run's counters into this one (the shard merge).

        Both operands must describe the same architecture under the same
        cost model -- the sharded runner merges per-partition results of
        one comparison cell, never across cells.  Integer counters sum
        exactly; float sums (``total_ms``, fault surcharges, per-step
        totals) are folded in whatever order the caller chooses, which is
        why :mod:`repro.runner.sharding` always folds in canonical
        partition order -- fixing the float-addition order makes merged
        results bit-identical for any shard count.
        """
        if other.architecture != self.architecture:
            raise ValueError(
                f"cannot merge metrics for {other.architecture!r} into "
                f"{self.architecture!r}"
            )
        if other.cost_model != self.cost_model:
            raise ValueError(
                f"cannot merge metrics across cost models "
                f"({other.cost_model!r} vs {self.cost_model!r})"
            )
        self.measured_requests += other.measured_requests
        self.warmup_requests += other.warmup_requests
        self.skipped_uncachable += other.skipped_uncachable
        self.skipped_error += other.skipped_error
        self.included_uncachable += other.included_uncachable
        self.included_error += other.included_error
        self.total_ms += other.total_ms
        for point, count in other.requests_by_point.items():
            self.requests_by_point[point] += count
        for point, count in other.bytes_by_point.items():
            self.bytes_by_point[point] += count
        self.remote_hits += other.remote_hits
        self.push_hits += other.push_hits
        self.false_positives += other.false_positives
        self.false_negatives += other.false_negatives
        self.suboptimal_positives += other.suboptimal_positives
        self.latency.merge(other.latency)
        self.degraded.merge(other.degraded)
        for kind, aggregate in other.steps.items():
            mine = self.steps.get(kind)
            if mine is None:
                mine = self.steps[kind] = StepAggregate(kind=kind)
            mine.merge(aggregate)
        self.journeyed_requests += other.journeyed_requests

    def validate(self, *, expected_requests: int | None = None) -> None:
        """Check conservation invariants; raises ``ValueError`` on breakage.

        Every measured request is satisfied at exactly one access point,
        so the per-point counts (and the latency histogram) must sum to
        ``measured_requests``; degraded counters can never exceed it, and
        fault-added time can never exceed total time.  The engine calls
        this after every run so a mis-accounted path fails loudly instead
        of skewing a table.

        Args:
            expected_requests: When given (the engine passes the trace
                length), assert the partition invariant: every trace
                request is exactly one of measured, warmup, skipped-error,
                or skipped-uncachable.
        """
        counters = (
            self.measured_requests,
            self.warmup_requests,
            self.skipped_error,
            self.skipped_uncachable,
            self.included_error,
            self.included_uncachable,
        )
        if any(count < 0 for count in counters):
            raise ValueError(f"negative request counter in {counters}")
        skipped = self.skipped_error + self.skipped_uncachable
        included = self.included_error + self.included_uncachable
        if skipped and included:
            raise ValueError(
                f"skipped ({skipped}) and included ({included}) counters are "
                "both nonzero; a run either excludes uncachable/error "
                "requests or processes them, never both"
            )
        processed = self.measured_requests + self.warmup_requests
        if included > processed:
            raise ValueError(
                f"included counters sum to {included} but only {processed} "
                "requests were processed; a request was counted twice"
            )
        if expected_requests is not None and processed + skipped != expected_requests:
            raise ValueError(
                f"measured+warmup+skipped = {processed + skipped} does not "
                f"partition the trace ({expected_requests} requests)"
            )
        by_point = sum(self.requests_by_point.values())
        if by_point != self.measured_requests:
            raise ValueError(
                f"access-point counts sum to {by_point}, expected "
                f"{self.measured_requests} measured requests"
            )
        if len(self.latency) != self.measured_requests:
            raise ValueError(
                f"latency histogram holds {len(self.latency)} samples, expected "
                f"{self.measured_requests}"
            )
        for name in ("faulted_requests", "stale_hint_forwards", "timeout_fallbacks"):
            count = getattr(self.degraded, name)
            if not 0 <= count <= self.measured_requests:
                raise ValueError(
                    f"degraded counter {name}={count} outside "
                    f"[0, {self.measured_requests}]"
                )
        if not 0.0 <= self.degraded.fault_added_ms <= self.total_ms:
            raise ValueError(
                f"fault-added time {self.degraded.fault_added_ms} outside "
                f"[0, {self.total_ms}]"
            )
        if not 0 <= self.journeyed_requests <= self.measured_requests:
            raise ValueError(
                f"journeyed_requests={self.journeyed_requests} outside "
                f"[0, {self.measured_requests}]"
            )
        if self.journeyed_requests == self.measured_requests and self.steps:
            # Every measured result carried a ledger, so the per-kind
            # decomposition must re-sum to the scalar totals.  Tolerance
            # covers accumulation-order rounding only (per-kind buckets
            # vs. per-request float sums), not accounting slack.
            step_total = sum(agg.total_ms for agg in self.steps.values())
            if not math.isclose(
                step_total, self.total_ms, rel_tol=1e-9, abs_tol=1e-6
            ):
                raise ValueError(
                    f"step decomposition sums to {step_total} ms, expected "
                    f"{self.total_ms} ms total"
                )
            step_fault = sum(agg.fault_ms for agg in self.steps.values())
            if not math.isclose(
                step_fault,
                self.degraded.fault_added_ms,
                rel_tol=1e-9,
                abs_tol=1e-6,
            ):
                raise ValueError(
                    f"step fault surcharges sum to {step_fault} ms, expected "
                    f"{self.degraded.fault_added_ms} ms fault-added"
                )

    # ------------------------------------------------------------------
    # derived statistics
    # ------------------------------------------------------------------
    @property
    def mean_response_ms(self) -> float:
        """Mean response time over measured requests (the Figure 8 metric)."""
        if self.measured_requests == 0:
            return 0.0
        return self.total_ms / self.measured_requests

    @property
    def hit_ratio(self) -> float:
        """Fraction of measured requests served by any cache."""
        if self.measured_requests == 0:
            return 0.0
        misses = self.requests_by_point[AccessPoint.SERVER]
        return 1.0 - misses / self.measured_requests

    @property
    def byte_hit_ratio(self) -> float:
        """Fraction of measured bytes served by any cache."""
        total = sum(self.bytes_by_point.values())
        if total == 0:
            return 0.0
        return 1.0 - self.bytes_by_point[AccessPoint.SERVER] / total

    def point_ratio(self, point: AccessPoint) -> float:
        """Fraction of measured requests satisfied at ``point``."""
        if self.measured_requests == 0:
            return 0.0
        return self.requests_by_point[point] / self.measured_requests

    def cumulative_hit_ratio_through(self, point: AccessPoint) -> float:
        """Hit ratio counting every cache level up to ``point`` (Figure 3).

        In a hierarchy, a hit "within L2" includes L1 hits; this helper
        reproduces that cumulative view.
        """
        if self.measured_requests == 0:
            return 0.0
        hits = sum(
            count
            for p, count in self.requests_by_point.items()
            if p.is_cache and p <= point
        )
        return hits / self.measured_requests

    def cumulative_byte_hit_ratio_through(self, point: AccessPoint) -> float:
        """Byte-weighted version of :meth:`cumulative_hit_ratio_through`."""
        total = sum(self.bytes_by_point.values())
        if total == 0:
            return 0.0
        hits = sum(
            count
            for p, count in self.bytes_by_point.items()
            if p.is_cache and p <= point
        )
        return hits / total

    def percentile_ms(self, fraction: float) -> float:
        """Response-time percentile over measured requests (e.g. 0.99)."""
        return self.latency.percentile(fraction)

    def summary(self) -> dict[str, float]:
        """Flat dict for table rendering."""
        return {
            "mean_response_ms": self.mean_response_ms,
            "p50_ms": self.percentile_ms(0.50),
            "p95_ms": self.percentile_ms(0.95),
            "p99_ms": self.percentile_ms(0.99),
            "hit_ratio": self.hit_ratio,
            "byte_hit_ratio": self.byte_hit_ratio,
            "l1_ratio": self.point_ratio(AccessPoint.L1),
            "l2_ratio": self.point_ratio(AccessPoint.L2),
            "l3_ratio": self.point_ratio(AccessPoint.L3),
            "miss_ratio": self.point_ratio(AccessPoint.SERVER),
            "false_positives": float(self.false_positives),
            "false_negatives": float(self.false_negatives),
            "push_hits": float(self.push_hits),
        }
