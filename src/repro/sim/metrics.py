"""Aggregated simulation results.

The paper's headline metric is **mean response time** over the measured
window (warmup excluded, uncachable/error requests excluded per section
2.2.2).  Hit ratios by access point, hint pathology counts, and byte
traffic are kept alongside so every figure can be derived from one run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hierarchy.base import AccessResult
from repro.netmodel.model import AccessPoint


class LatencyHistogram:
    """Log-scale response-time histogram for percentile queries.

    The paper reports means; a deployment engineer also wants tails, so
    the metrics keep a compact histogram (~3% relative resolution) instead
    of storing every sample.  Bin ``i`` covers
    ``[10**(i/BINS_PER_DECADE - 1), 10**((i+1)/BINS_PER_DECADE - 1))`` ms.
    """

    BINS_PER_DECADE = 32
    #: Covers 0.1 ms .. 10^6 ms in log-scale bins.
    _N_BINS = BINS_PER_DECADE * 7

    def __init__(self) -> None:
        self._bins = [0] * self._N_BINS
        self._count = 0

    def record(self, ms: float) -> None:
        """Add one sample (values below 0.1 ms clamp into the first bin)."""
        if ms < 0:
            raise ValueError(f"latency must be non-negative, got {ms}")
        position = (math.log10(ms) + 1.0) * self.BINS_PER_DECADE if ms > 0.1 else 0.0
        index = min(self._N_BINS - 1, max(0, int(position)))
        self._bins[index] += 1
        self._count += 1

    def __len__(self) -> int:
        return self._count

    def percentile(self, fraction: float) -> float:
        """The response time at the given quantile (0 < fraction <= 1).

        Returns the upper edge of the bin containing the quantile sample,
        so the estimate is conservative (never under-reports the tail).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if self._count == 0:
            return 0.0
        target = math.ceil(fraction * self._count)
        seen = 0
        for index, count in enumerate(self._bins):
            seen += count
            if seen >= target:
                return 10 ** ((index + 1) / self.BINS_PER_DECADE - 1.0)
        return 10 ** (self._N_BINS / self.BINS_PER_DECADE - 1.0)


@dataclass
class SimMetrics:
    """Counters accumulated over the measured window of one simulation."""

    architecture: str = ""
    cost_model: str = ""
    measured_requests: int = 0
    warmup_requests: int = 0
    skipped_uncachable: int = 0
    skipped_error: int = 0
    total_ms: float = 0.0
    requests_by_point: dict[AccessPoint, int] = field(
        default_factory=lambda: {p: 0 for p in AccessPoint}
    )
    bytes_by_point: dict[AccessPoint, int] = field(
        default_factory=lambda: {p: 0 for p in AccessPoint}
    )
    remote_hits: int = 0
    push_hits: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    suboptimal_positives: int = 0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    def record(self, result: AccessResult, size: int) -> None:
        """Accumulate one measured-window access result."""
        self.measured_requests += 1
        self.total_ms += result.time_ms
        self.latency.record(result.time_ms)
        self.requests_by_point[result.point] += 1
        self.bytes_by_point[result.point] += size
        if result.remote_hit:
            self.remote_hits += 1
        if result.push_hit:
            self.push_hits += 1
        if result.false_positive:
            self.false_positives += 1
        if result.false_negative:
            self.false_negatives += 1
        if result.suboptimal_positive:
            self.suboptimal_positives += 1

    # ------------------------------------------------------------------
    # derived statistics
    # ------------------------------------------------------------------
    @property
    def mean_response_ms(self) -> float:
        """Mean response time over measured requests (the Figure 8 metric)."""
        if self.measured_requests == 0:
            return 0.0
        return self.total_ms / self.measured_requests

    @property
    def hit_ratio(self) -> float:
        """Fraction of measured requests served by any cache."""
        if self.measured_requests == 0:
            return 0.0
        misses = self.requests_by_point[AccessPoint.SERVER]
        return 1.0 - misses / self.measured_requests

    @property
    def byte_hit_ratio(self) -> float:
        """Fraction of measured bytes served by any cache."""
        total = sum(self.bytes_by_point.values())
        if total == 0:
            return 0.0
        return 1.0 - self.bytes_by_point[AccessPoint.SERVER] / total

    def point_ratio(self, point: AccessPoint) -> float:
        """Fraction of measured requests satisfied at ``point``."""
        if self.measured_requests == 0:
            return 0.0
        return self.requests_by_point[point] / self.measured_requests

    def cumulative_hit_ratio_through(self, point: AccessPoint) -> float:
        """Hit ratio counting every cache level up to ``point`` (Figure 3).

        In a hierarchy, a hit "within L2" includes L1 hits; this helper
        reproduces that cumulative view.
        """
        if self.measured_requests == 0:
            return 0.0
        hits = sum(
            count
            for p, count in self.requests_by_point.items()
            if p.is_cache and p <= point
        )
        return hits / self.measured_requests

    def cumulative_byte_hit_ratio_through(self, point: AccessPoint) -> float:
        """Byte-weighted version of :meth:`cumulative_hit_ratio_through`."""
        total = sum(self.bytes_by_point.values())
        if total == 0:
            return 0.0
        hits = sum(
            count
            for p, count in self.bytes_by_point.items()
            if p.is_cache and p <= point
        )
        return hits / total

    def percentile_ms(self, fraction: float) -> float:
        """Response-time percentile over measured requests (e.g. 0.99)."""
        return self.latency.percentile(fraction)

    def summary(self) -> dict[str, float]:
        """Flat dict for table rendering."""
        return {
            "mean_response_ms": self.mean_response_ms,
            "p50_ms": self.percentile_ms(0.50),
            "p99_ms": self.percentile_ms(0.99),
            "hit_ratio": self.hit_ratio,
            "byte_hit_ratio": self.byte_hit_ratio,
            "l1_ratio": self.point_ratio(AccessPoint.L1),
            "l2_ratio": self.point_ratio(AccessPoint.L2),
            "l3_ratio": self.point_ratio(AccessPoint.L3),
            "miss_ratio": self.point_ratio(AccessPoint.SERVER),
            "false_positives": float(self.false_positives),
            "false_negatives": float(self.false_negatives),
            "push_hits": float(self.push_hits),
        }
