"""Queueing-network replay: emergent contention instead of analytic factors.

:mod:`repro.netmodel.queueing` prices load with a closed-form M/M/1
factor.  This module measures contention instead: every cache node is a
FIFO server with finite service capacity, and each request's path (decided
by the architecture exactly as in the trace-driven run) is *replayed*
through those servers, accumulating real queueing delay whenever a node is
busy.

Two deliberate design choices keep this tractable and honest:

* **Path/timing decoupling** -- hit/miss decisions come from the normal
  sequential architecture run, so cache contents are identical to the
  trace-driven experiments; only the *timing* is recomputed through the
  queue network.  Queueing cannot change what is cached, only how long
  accesses take (the same separation the analytic model makes).
* **Issue-order service** -- servers take requests in global issue order,
  which equals arrival order within any single proxy's request stream and
  approximates it across streams.  This removes the need for a rollback-
  capable event scheduler while preserving the utilization arithmetic.

Because scaled traces offer little natural load, a *time compression*
factor squeezes inter-arrival gaps until the busiest node reaches a target
utilization -- the knob the ``queueing_validation`` experiment sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.hierarchy.base import Architecture
from repro.netmodel.model import AccessPoint
from repro.sim.metrics import LatencyHistogram
from repro.traces.records import Trace

#: Share of each access's idle cost that is cache service time (matches the
#: analytic model so the two are comparable).
SERVICE_SHARE = 0.5


class FifoServer:
    """A single-server FIFO queue with deterministic service times."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.free_at = 0.0
        self.busy_ms = 0.0
        self.served = 0
        self.total_wait_ms = 0.0

    def serve(self, arrival_ms: float, service_ms: float) -> float:
        """Admit a request; returns its departure time."""
        start = max(arrival_ms, self.free_at)
        self.total_wait_ms += start - arrival_ms
        self.busy_ms += service_ms
        self.served += 1
        self.free_at = start + service_ms
        return start + service_ms

    def utilization(self, horizon_ms: float) -> float:
        """Fraction of the horizon this server spent busy."""
        return self.busy_ms / horizon_ms if horizon_ms > 0 else 0.0

    def mean_wait_ms(self) -> float:
        """Average queueing delay per served request."""
        return self.total_wait_ms / self.served if self.served else 0.0


@dataclass
class QueueingResult:
    """Timing statistics from one queueing replay."""

    measured_requests: int = 0
    total_ms: float = 0.0
    total_queue_wait_ms: float = 0.0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    utilization_by_level: dict[str, float] = field(default_factory=dict)

    @property
    def mean_response_ms(self) -> float:
        if self.measured_requests == 0:
            return 0.0
        return self.total_ms / self.measured_requests

    @property
    def mean_queue_wait_ms(self) -> float:
        if self.measured_requests == 0:
            return 0.0
        return self.total_queue_wait_ms / self.measured_requests


class QueueingReplay:
    """Replay an architecture's decided paths through FIFO cache servers.

    Args:
        architecture: A *fresh* architecture; its ``process`` decides each
            request's path, and its topology names the servers.
        compression: Time-compression factor (>= 1): inter-arrival gaps are
            divided by it, raising offered load without altering the trace.
    """

    def __init__(self, architecture: Architecture, compression: float = 1.0) -> None:
        if compression < 1.0:
            raise ConfigurationError(
                f"compression must be >= 1, got {compression}"
            )
        self.architecture = architecture
        self.compression = compression
        topology = architecture.topology  # all concrete architectures have one
        self.l1_servers = [FifoServer(f"l1-{i}") for i in range(topology.n_l1)]
        self.l2_servers = [FifoServer(f"l2-{i}") for i in range(topology.n_l2)]
        self.l3_server = FifoServer("l3")
        self._topology = topology

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> QueueingResult:
        """Decide and replay every cacheable request; returns timing stats."""
        result = QueueingResult()
        start_s = trace.requests[0].time if trace.requests else 0.0
        horizon_ms = 0.0
        for request in trace.requests:
            if request.error or not request.cacheable:
                continue
            outcome = self.architecture.process(request)
            issue_ms = (request.time - start_s) * 1000.0 / self.compression
            legs = self._legs(request.client_id, outcome.point, outcome.time_ms)
            t = issue_ms
            waited = 0.0
            for server, network_ms, service_ms in legs:
                t += network_ms
                if server is None:
                    t += service_ms  # origin servers don't queue (outside system)
                    continue
                before = server.total_wait_ms
                t = server.serve(t, service_ms)
                waited += server.total_wait_ms - before
            horizon_ms = max(horizon_ms, t)
            if request.time < trace.warmup:
                continue
            response = t - issue_ms
            result.measured_requests += 1
            result.total_ms += response
            result.total_queue_wait_ms += waited
            result.latency.record(response)

        result.utilization_by_level = {
            "l1_max": max(
                (s.utilization(horizon_ms) for s in self.l1_servers), default=0.0
            ),
            "l2_max": max(
                (s.utilization(horizon_ms) for s in self.l2_servers), default=0.0
            ),
            "l3": self.l3_server.utilization(horizon_ms),
        }
        return result

    # ------------------------------------------------------------------
    # path decomposition
    # ------------------------------------------------------------------
    def _legs(
        self, client_id: int, point: AccessPoint, idle_ms: float
    ) -> list[tuple[FifoServer | None, float, float]]:
        """Split one access into (server, network_ms, service_ms) legs.

        The idle cost's service share is divided across the cache nodes on
        the path (matching the analytic model's assumption); the remainder
        is network time on the first leg.
        """
        l1_index = self._topology.l1_of_client(client_id)
        servers = self._servers_on_path(l1_index, point)
        cache_servers = [s for s in servers if s is not None]
        if cache_servers:
            per_server = idle_ms * SERVICE_SHARE / len(cache_servers)
            network = idle_ms * (1 - SERVICE_SHARE)
        else:
            per_server = 0.0
            network = idle_ms
        legs: list[tuple[FifoServer | None, float, float]] = []
        for index, server in enumerate(servers):
            leg_network = network if index == 0 else 0.0
            service = per_server if server is not None else 0.0
            legs.append((server, leg_network, service))
        if not servers:
            legs.append((None, network, 0.0))
        return legs

    def _servers_on_path(
        self, l1_index: int, point: AccessPoint
    ) -> list[FifoServer | None]:
        """Which servers a request visits, by architecture shape."""
        own_l1 = self.l1_servers[l1_index]
        if self.architecture.name.startswith("hierarchy") or self.architecture.name == "icp":
            l2 = self.l2_servers[self._topology.l2_of_l1(l1_index)]
            path: list[FifoServer | None] = [own_l1]
            if point >= AccessPoint.L2:
                path.append(l2)
            if point >= AccessPoint.L3:
                path.append(self.l3_server)
            if point is AccessPoint.SERVER:
                path.append(None)
            return path
        # Hint-style architectures: own L1, then at most one peer (modelled
        # as a representative same-distance L1 server), or the origin.
        if point is AccessPoint.L1:
            return [own_l1]
        if point is AccessPoint.SERVER:
            return [own_l1, None]
        peer = self._representative_peer(l1_index, point)
        return [own_l1, self.l1_servers[peer]]

    def _representative_peer(self, l1_index: int, point: AccessPoint) -> int:
        """A deterministic peer at the requested distance class."""
        if point is AccessPoint.L2:
            siblings = self._topology.siblings_of(l1_index)
            return siblings[0] if siblings else l1_index
        group = self._topology.l2_of_l1(l1_index)
        other_group = (group + 1) % self._topology.n_l2
        return self._topology.l1_nodes_of_l2(other_group)[0]


def compression_for_target_load(
    trace: Trace,
    architecture: Architecture,
    target_root_utilization: float,
) -> float:
    """Compression factor that drives the L3 root to a target utilization.

    Runs one uncompressed replay to measure the natural root utilization,
    then scales: utilization is proportional to compression (service
    demand is fixed; the horizon shrinks).
    """
    if not 0.0 < target_root_utilization < 1.0:
        raise ConfigurationError("target utilization must be in (0, 1)")
    probe = QueueingReplay(architecture, compression=1.0)
    natural = probe.run(trace).utilization_by_level
    busiest = max(natural.values())
    if busiest <= 0:
        return 1.0
    return max(1.0, target_root_utilization / busiest)
