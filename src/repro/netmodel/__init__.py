"""Network access-cost models.

The paper's simulator does not model packets; it charges each request a
response time parameterized by *where* the request was satisfied and *how*
it got there (section 3.3: "we parameterize our results using estimates of
Internet access times").  This package provides those parameterizations:

* :class:`repro.netmodel.model.CostModel` -- the interface: hierarchical,
  direct, and via-L1 access times for each access point (L1/L2/L3/server).
* :class:`repro.netmodel.testbed.TestbedCostModel` -- calibrated to the
  Berkeley/San Diego/Austin/Cornell testbed of Figure 1 (size-dependent).
* :class:`repro.netmodel.rousskov.RousskovCostModel` -- the min/max
  component times from Rousskov's Squid measurements, composed exactly as
  the paper's Table 3 composes them (size-independent medians).
* :mod:`repro.netmodel.topology` -- synthetic geographic node placement and
  distances, used by the Plaxton tree embedding.
"""

from repro.netmodel.model import AccessPoint, CostModel
from repro.netmodel.queueing import LoadAwareCostModel
from repro.netmodel.rousskov import ROUSSKOV_COMPONENTS, RousskovCostModel
from repro.netmodel.testbed import TestbedCostModel
from repro.netmodel.topology import GeographicTopology

__all__ = [
    "ROUSSKOV_COMPONENTS",
    "AccessPoint",
    "CostModel",
    "GeographicTopology",
    "LoadAwareCostModel",
    "RousskovCostModel",
    "TestbedCostModel",
]


def cost_model_by_name(name: str) -> CostModel:
    """Build one of the three standard cost models by name.

    ``"testbed"`` -> :class:`TestbedCostModel`;
    ``"min"`` / ``"max"`` -> :class:`RousskovCostModel` at that bound.
    These are the three parameter sets behind Figure 8 / Table 6.
    """
    lowered = name.lower()
    if lowered == "testbed":
        return TestbedCostModel()
    if lowered in ("min", "max"):
        return RousskovCostModel(lowered)
    raise ValueError(f"unknown cost model {name!r}; expected testbed/min/max")
