"""Load-dependent access costs (the paper's untested hypothesis).

Section 2.1.1: "in our experiments, the caches were idle ... If the caches
were heavily loaded, queuing delays and implementation inefficiencies of
the caches might significantly increase the per-hop costs we observe.
Busy nodes would probably increase the importance of reducing the number
of hops in a cache system."

:class:`LoadAwareCostModel` makes that testable.  It wraps any base cost
model and inflates the *cache-service* share of each access by the classic
M/M/1 sojourn factor ``1 / (1 - rho)`` for every cache level traversed,
where ``rho`` is that level's utilization.  Utilizations rise with the
hierarchy: a shared L3 root serves every client's misses, so it saturates
first -- which is exactly why multi-hop paths through high levels hurt
more as load grows.

The ``load_sensitivity`` experiment sweeps the load factor and shows the
hint architecture's speedup widening with load, confirming the hypothesis.
"""

from __future__ import annotations

from repro.netmodel.model import AccessPoint, CostModel

#: Fraction of an access's cost that is cache service time (CPU + disk at
#: the proxy) as opposed to pure network propagation; only the service
#: share queues.  Derived from the Rousskov components, where disk +
#: request parsing are roughly half the total on cache hits.
_SERVICE_SHARE = 0.5


class LoadAwareCostModel(CostModel):
    """Wrap a cost model with per-level M/M/1 queueing inflation.

    Args:
        base: The idle-system cost model being wrapped.
        load: System load factor in ``[0, 1)``: the utilization of the
            busiest (root) cache.  Lower levels see proportionally less:
            utilization at L1 is ``load * l1_share`` etc.
        level_shares: Relative utilization of each cache level; defaults
            reflect that higher, more-shared caches concentrate traffic.
    """

    def __init__(
        self,
        base: CostModel,
        load: float,
        level_shares: dict[AccessPoint, float] | None = None,
    ) -> None:
        if not 0.0 <= load < 1.0:
            raise ValueError(f"load must be in [0, 1), got {load}")
        self.base = base
        self.load = load
        self.name = f"{base.name}+load{load:g}"
        self._shares = level_shares or {
            AccessPoint.L1: 0.35,
            AccessPoint.L2: 0.65,
            AccessPoint.L3: 1.0,
            AccessPoint.SERVER: 0.0,  # the origin is outside the cache system
        }

    # ------------------------------------------------------------------
    # inflation machinery
    # ------------------------------------------------------------------
    def _inflation(self, level: AccessPoint) -> float:
        """Sojourn-time multiplier for one cache level at current load."""
        rho = self.load * self._shares[level]
        return 1.0 / (1.0 - rho)

    def _inflate(self, idle_ms: float, levels: list[AccessPoint]) -> float:
        """Inflate the service share of a cost across traversed levels.

        The idle cost is split evenly across the traversed cache levels'
        service components; each component queues independently.
        """
        cache_levels = [lv for lv in levels if lv.is_cache]
        if not cache_levels:
            return idle_ms
        service = idle_ms * _SERVICE_SHARE / len(cache_levels)
        network = idle_ms - service * len(cache_levels)
        return network + sum(service * self._inflation(lv) for lv in cache_levels)

    @staticmethod
    def _traversed(point: AccessPoint) -> list[AccessPoint]:
        return [lv for lv in AccessPoint if lv <= point]

    # ------------------------------------------------------------------
    # CostModel interface
    # ------------------------------------------------------------------
    def hierarchical_ms(self, point: AccessPoint, size: int) -> float:
        idle = self.base.hierarchical_ms(point, size)
        return self._inflate(idle, self._traversed(point))

    def direct_ms(self, point: AccessPoint, size: int) -> float:
        idle = self.base.direct_ms(point, size)
        levels = [point] if point.is_cache else []
        return self._inflate(idle, levels)

    def via_l1_ms(self, point: AccessPoint, size: int) -> float:
        idle = self.base.via_l1_ms(point, size)
        levels = [AccessPoint.L1] + ([point] if point.is_cache and point != AccessPoint.L1 else [])
        return self._inflate(idle, levels)

    def probe_ms(self, point: AccessPoint) -> float:
        idle = self.base.probe_ms(point)
        levels = [point] if point.is_cache else []
        return self._inflate(idle, levels)
