"""Cost-model interface shared by all access-time parameterizations.

An :class:`AccessPoint` names *where* a request was ultimately satisfied:
the client's own L1 proxy, a cache at L2 distance (same regional subtree),
a cache at L3 distance (elsewhere in the system), or the origin server.

A :class:`CostModel` prices the three path shapes the paper studies
(Figure 1's three panels):

* ``hierarchical_ms`` -- the request walks up the data hierarchy level by
  level and the object is copied back down through every cache.
* ``direct_ms`` -- the client talks straight to the access point
  (Figure 1b; only realistic when clients may bypass their proxy).
* ``via_l1_ms`` -- the request goes through the client's L1 proxy, which
  then talks straight to the access point (Figure 1c).  This is the path
  shape of the hint architecture: at most one cache-to-cache hop.

All times are in **milliseconds**; sizes in **bytes**.
"""

from __future__ import annotations

import abc
from enum import IntEnum


class AccessPoint(IntEnum):
    """Where a request was satisfied, ordered by distance from the client."""

    L1 = 1
    L2 = 2
    L3 = 3
    SERVER = 4

    @property
    def is_cache(self) -> bool:
        """True for cache levels, False for the origin server."""
        return self is not AccessPoint.SERVER


class CostModel(abc.ABC):
    """Maps (path shape, access point, object size) to milliseconds."""

    #: Human-readable name used in experiment reports ("testbed", "min", "max").
    name: str = "abstract"

    @abc.abstractmethod
    def hierarchical_ms(self, point: AccessPoint, size: int) -> float:
        """Time to satisfy a request through the data hierarchy.

        ``point`` is the deepest level reached; ``SERVER`` means a full miss
        that traversed every level and then fetched from the origin.
        """

    @abc.abstractmethod
    def direct_ms(self, point: AccessPoint, size: int) -> float:
        """Time for the client to fetch straight from ``point``."""

    @abc.abstractmethod
    def via_l1_ms(self, point: AccessPoint, size: int) -> float:
        """Time to fetch from ``point`` through the client's L1 proxy only."""

    @abc.abstractmethod
    def probe_ms(self, point: AccessPoint) -> float:
        """Cost of a wasted control round-trip to ``point`` (no data moved).

        Charged when a stale hint sends a request to a cache that no longer
        holds the object (a *false positive*): the remote cache replies with
        an error code and the request then proceeds to the server.
        """

    # ------------------------------------------------------------------
    # batch (columnar) variants
    # ------------------------------------------------------------------
    # The fast engine prices whole batches of same-shaped accesses at once.
    # These defaults just loop the scalar methods, so every cost model is
    # batch-capable by construction; models with closed-form pricing
    # (e.g. the testbed model) override them with vectorized versions that
    # replay the scalar arithmetic elementwise, bit-for-bit.

    def hierarchical_ms_batch(self, point: AccessPoint, sizes) -> "np.ndarray":
        """Elementwise :meth:`hierarchical_ms` over an array of sizes."""
        import numpy as np

        fn = self.hierarchical_ms
        return np.array([fn(point, s) for s in sizes.tolist()], dtype=np.float64)

    def direct_ms_batch(self, point: AccessPoint, sizes) -> "np.ndarray":
        """Elementwise :meth:`direct_ms` over an array of sizes."""
        import numpy as np

        fn = self.direct_ms
        return np.array([fn(point, s) for s in sizes.tolist()], dtype=np.float64)

    def via_l1_ms_batch(self, point: AccessPoint, sizes) -> "np.ndarray":
        """Elementwise :meth:`via_l1_ms` over an array of sizes."""
        import numpy as np

        fn = self.via_l1_ms
        return np.array([fn(point, s) for s in sizes.tolist()], dtype=np.float64)

    # ------------------------------------------------------------------
    # derived conveniences
    # ------------------------------------------------------------------
    def hint_lookup_ms(self) -> float:
        """Local hint-cache lookup cost.

        The prototype measured 4.3 microseconds for an in-memory lookup
        (section 3.2.1) -- negligible against network times, but modelled so
        the accounting is honest.
        """
        return 0.0043

    def speedup(self, baseline_ms: float, improved_ms: float) -> float:
        """Ratio baseline/improved, the paper's speedup convention."""
        if improved_ms <= 0:
            raise ValueError("improved time must be positive")
        return baseline_ms / improved_ms

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
