"""Synthetic geographic topology.

The Plaxton embedding (paper section 3.1.3) needs "a list of nodes and the
approximate distances between them" to pick nearby parents.  We synthesize
a clustered 2-D geography: regional cluster centers scattered over a plane,
cache nodes scattered tightly around their center.  This mirrors the
paper's world -- many caches inside an ISP region, regions far apart -- and
gives the embedding genuine locality structure to exploit (the locality
property tests in ``tests/plaxton`` rely on it).
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import TopologyError


class GeographicTopology:
    """Clustered node placement with Euclidean distances.

    Args:
        n_nodes: Total number of cache nodes.
        n_clusters: Number of regional clusters.
        rng: Randomness for placement.
        world_size: Side length of the square world, in abstract distance
            units (think milliseconds of one-way latency).
        cluster_radius: Scatter radius of nodes around their cluster center.
    """

    def __init__(
        self,
        n_nodes: int,
        n_clusters: int,
        rng: np.random.Generator,
        *,
        world_size: float = 100.0,
        cluster_radius: float = 4.0,
    ) -> None:
        if n_nodes <= 0:
            raise TopologyError(f"need at least one node, got {n_nodes}")
        if n_clusters <= 0 or n_clusters > n_nodes:
            raise TopologyError(
                f"cluster count {n_clusters} invalid for {n_nodes} nodes"
            )
        self.n_nodes = n_nodes
        self.n_clusters = n_clusters
        self.world_size = world_size

        centers = rng.random((n_clusters, 2)) * world_size
        assignments = np.arange(n_nodes) % n_clusters
        offsets = rng.normal(scale=cluster_radius, size=(n_nodes, 2))
        self._cluster_of = assignments
        self._positions = centers[assignments] + offsets

    @property
    def positions(self) -> np.ndarray:
        """``(n_nodes, 2)`` array of node coordinates."""
        return self._positions

    def cluster_of(self, node: int) -> int:
        """Cluster index of ``node``."""
        self._check(node)
        return int(self._cluster_of[node])

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between two nodes."""
        self._check(a)
        self._check(b)
        dx = self._positions[a] - self._positions[b]
        return float(math.hypot(dx[0], dx[1]))

    def distances_from(self, node: int) -> np.ndarray:
        """Vector of distances from ``node`` to every node (self included)."""
        self._check(node)
        deltas = self._positions - self._positions[node]
        return np.hypot(deltas[:, 0], deltas[:, 1])

    def nearest(self, node: int, candidates: list[int]) -> int:
        """Return the candidate nearest to ``node``.

        Ties break toward the lower node id so results are deterministic.
        """
        if not candidates:
            raise TopologyError("nearest() needs at least one candidate")
        distances = self.distances_from(node)
        return min(candidates, key=lambda c: (distances[c], c))

    def mean_intra_cluster_distance(self) -> float:
        """Average distance between node pairs sharing a cluster."""
        total, count = 0.0, 0
        for cluster in range(self.n_clusters):
            members = np.flatnonzero(self._cluster_of == cluster)
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    total += self.distance(int(a), int(b))
                    count += 1
        return total / count if count else 0.0

    def mean_inter_cluster_distance(self) -> float:
        """Average distance between node pairs in different clusters."""
        total, count = 0.0, 0
        for a in range(self.n_nodes):
            for b in range(a + 1, self.n_nodes):
                if self._cluster_of[a] != self._cluster_of[b]:
                    total += self.distance(a, b)
                    count += 1
        return total / count if count else 0.0

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise TopologyError(f"node {node} out of range [0, {self.n_nodes})")
