"""Rousskov-derived cost model (Table 3 of the paper).

Rousskov instrumented deployed Squid caches and published per-component hit
times: *client connect* (accept to parsed request), *disk* (swap-in), and
*proxy reply* (send back), for leaf, intermediate, and root caches, plus
the top-level proxy's miss time to origin servers.  The paper reduces these
to min/max bounds over peak-hour 20-minute medians and composes them into
total access times.  We encode the same component numbers and the same
composition rules; :class:`RousskovCostModel` reproduces every cell of
Table 3 exactly (tests pin all 24 derived cells).

Composition rules (paper section 2.1.2):

* hierarchical to level k: sum of (connect + reply) over levels 1..k,
  plus disk at level k;
* hierarchical miss: hierarchical overhead through the root (no disk),
  plus the server miss time;
* direct to level k: connect(k) + disk(k) + reply(k); direct miss is the
  raw server miss time;
* via L1 to level k >= 2: L1 connect + L1 reply + direct(k); via-L1 miss:
  L1 connect + L1 reply + server miss time.

These medians aggregate over real object-size mixes, so this model is
size-independent -- the ``size`` argument is accepted and ignored.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netmodel.model import AccessPoint, CostModel


@dataclass(frozen=True)
class ComponentTimes:
    """Min/max of one Squid time component, in milliseconds."""

    min_ms: float
    max_ms: float

    def pick(self, bound: str) -> float:
        """Select the ``"min"`` or ``"max"`` bound."""
        if bound == "min":
            return self.min_ms
        if bound == "max":
            return self.max_ms
        raise ValueError(f"bound must be 'min' or 'max', got {bound!r}")


@dataclass(frozen=True)
class LevelComponents:
    """The three Squid components for one cache level."""

    client_connect: ComponentTimes
    disk: ComponentTimes
    proxy_reply: ComponentTimes


#: Rousskov's published component times, as tabulated in the paper (Table 3,
#: left half).  Keys are cache levels; the origin-server miss time is
#: :data:`MISS_SERVER`.
ROUSSKOV_COMPONENTS: dict[AccessPoint, LevelComponents] = {
    AccessPoint.L1: LevelComponents(
        client_connect=ComponentTimes(16.0, 62.0),
        disk=ComponentTimes(72.0, 135.0),
        proxy_reply=ComponentTimes(75.0, 155.0),
    ),
    AccessPoint.L2: LevelComponents(
        client_connect=ComponentTimes(50.0, 550.0),
        disk=ComponentTimes(60.0, 950.0),
        proxy_reply=ComponentTimes(70.0, 1050.0),
    ),
    AccessPoint.L3: LevelComponents(
        client_connect=ComponentTimes(100.0, 1200.0),
        disk=ComponentTimes(100.0, 650.0),
        proxy_reply=ComponentTimes(120.0, 1000.0),
    ),
}

#: Time the top-level proxy spends connecting to and receiving from origin
#: servers on a miss.
MISS_SERVER = ComponentTimes(550.0, 3200.0)


class RousskovCostModel(CostModel):
    """Size-independent min/max access times from Rousskov's measurements.

    Args:
        bound: ``"min"`` for the low-load bound, ``"max"`` for the congested
            bound.  Figure 8 and Table 6 report both.
    """

    def __init__(self, bound: str) -> None:
        if bound not in ("min", "max"):
            raise ValueError(f"bound must be 'min' or 'max', got {bound!r}")
        self.bound = bound
        self.name = bound

    # ------------------------------------------------------------------
    # component helpers
    # ------------------------------------------------------------------
    def _connect(self, level: AccessPoint) -> float:
        return ROUSSKOV_COMPONENTS[level].client_connect.pick(self.bound)

    def _disk(self, level: AccessPoint) -> float:
        return ROUSSKOV_COMPONENTS[level].disk.pick(self.bound)

    def _reply(self, level: AccessPoint) -> float:
        return ROUSSKOV_COMPONENTS[level].proxy_reply.pick(self.bound)

    def _miss_server(self) -> float:
        return MISS_SERVER.pick(self.bound)

    def _l1_relay(self) -> float:
        """Connect + reply overhead of relaying through the L1 proxy."""
        return self._connect(AccessPoint.L1) + self._reply(AccessPoint.L1)

    # ------------------------------------------------------------------
    # CostModel interface
    # ------------------------------------------------------------------
    def hierarchical_ms(self, point: AccessPoint, size: int = 0) -> float:
        cache_levels = (AccessPoint.L1, AccessPoint.L2, AccessPoint.L3)
        if point is AccessPoint.SERVER:
            overhead = sum(self._connect(lv) + self._reply(lv) for lv in cache_levels)
            return overhead + self._miss_server()
        traversed = cache_levels[: cache_levels.index(point) + 1]
        overhead = sum(self._connect(lv) + self._reply(lv) for lv in traversed)
        return overhead + self._disk(point)

    def direct_ms(self, point: AccessPoint, size: int = 0) -> float:
        if point is AccessPoint.SERVER:
            return self._miss_server()
        return self._connect(point) + self._disk(point) + self._reply(point)

    def via_l1_ms(self, point: AccessPoint, size: int = 0) -> float:
        if point is AccessPoint.L1:
            return self.direct_ms(AccessPoint.L1)
        return self._l1_relay() + self.direct_ms(point)

    def probe_ms(self, point: AccessPoint) -> float:
        """A wasted probe pays the connect time of the probed level."""
        if point is AccessPoint.SERVER:
            return self._miss_server()
        return self._connect(point)

    def table3_row(self, point: AccessPoint) -> dict[str, float]:
        """One row of the paper's Table 3 for this bound."""
        return {
            "hierarchical": self.hierarchical_ms(point),
            "direct": self.direct_ms(point),
            "via_l1": self.via_l1_ms(point),
        }
