"""Testbed cost model (Figure 1 of the paper).

The paper measured a live hierarchy -- client+L1 at UC Berkeley, L2 at UC
San Diego, L3 at UT Austin, server at Cornell -- fetching objects of 2 KB
to 1 MB along three path shapes.  We reproduce it with a linear-in-size
model per path segment: fetching ``size`` bytes over a segment costs
``connect_ms + size_kb * per_kb_ms``.  A hierarchical access sums the
segments it traverses (store-and-forward); a direct access pays a single
end-to-end segment; a via-L1 access pays the LAN segment plus the proxy's
end-to-end segment plus a forwarding overhead.

Calibration anchors from the paper's text and Figure 1 at 8 KB:

* direct L3 access ~= 360 ms, hierarchical L3 hit ~= 2.4-2.5x that
  ("a level-3 cache hit time could speed up by a factor of 2.5 for an 8 KB
  object"), with a ~545 ms absolute gap;
* L1 hits are tens of ms (switched 10 Mbit/s LAN);
* L1 hits are ~4.75x faster than direct-to-L2-distance and ~6.2x faster
  than direct-to-L3-distance accesses for 8 KB objects (section 4 intro).

The default constants below satisfy those anchors; tests pin them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import KB
from repro.netmodel.model import AccessPoint, CostModel


@dataclass(frozen=True)
class Segment:
    """A path segment priced as ``connect_ms + size_kb * per_kb_ms``."""

    connect_ms: float
    per_kb_ms: float

    def cost_ms(self, size: int) -> float:
        """Cost of moving ``size`` bytes across this segment."""
        return self.connect_ms + (size / KB) * self.per_kb_ms


#: Hop segments walked by hierarchical accesses (client->L1->L2->L3->server).
#: Each inter-cache hop behaves like a wide-area fetch of its own, which is
#: exactly the store-and-forward penalty the paper measures.
_HIERARCHY_SEGMENTS: dict[AccessPoint, Segment] = {
    AccessPoint.L1: Segment(connect_ms=12.0, per_kb_ms=1.0),
    AccessPoint.L2: Segment(connect_ms=150.0, per_kb_ms=18.0),
    AccessPoint.L3: Segment(connect_ms=290.0, per_kb_ms=37.0),
    AccessPoint.SERVER: Segment(connect_ms=350.0, per_kb_ms=40.0),
}

#: End-to-end segments for direct client access (Figure 1b).
_DIRECT_SEGMENTS: dict[AccessPoint, Segment] = {
    AccessPoint.L1: Segment(connect_ms=12.0, per_kb_ms=1.0),
    AccessPoint.L2: Segment(connect_ms=130.0, per_kb_ms=14.0),
    AccessPoint.L3: Segment(connect_ms=180.0, per_kb_ms=22.0),
    AccessPoint.SERVER: Segment(connect_ms=300.0, per_kb_ms=35.0),
}

#: Extra proxy forwarding overhead when a request is relayed via the L1
#: cache (Figure 1c): accept + parse + relay without caching the body.
_VIA_L1_FORWARD_MS = 20.0


class TestbedCostModel(CostModel):
    """Size-dependent access times calibrated to the paper's testbed."""

    name = "testbed"

    def __init__(
        self,
        hierarchy_segments: dict[AccessPoint, Segment] | None = None,
        direct_segments: dict[AccessPoint, Segment] | None = None,
        via_l1_forward_ms: float = _VIA_L1_FORWARD_MS,
    ) -> None:
        self._hier = dict(hierarchy_segments or _HIERARCHY_SEGMENTS)
        self._direct = dict(direct_segments or _DIRECT_SEGMENTS)
        self._forward_ms = via_l1_forward_ms
        missing = [p for p in AccessPoint if p not in self._hier or p not in self._direct]
        if missing:
            raise ValueError(f"cost model missing access points: {missing}")

    def hierarchical_ms(self, point: AccessPoint, size: int) -> float:
        """Sum the store-and-forward segments up to (and including) ``point``."""
        total = 0.0
        for level in AccessPoint:
            total += self._hier[level].cost_ms(size)
            if level is point:
                break
        return total

    def direct_ms(self, point: AccessPoint, size: int) -> float:
        return self._direct[point].cost_ms(size)

    def via_l1_ms(self, point: AccessPoint, size: int) -> float:
        if point is AccessPoint.L1:
            return self.direct_ms(AccessPoint.L1, size)
        return (
            self._direct[AccessPoint.L1].cost_ms(size)
            + self._forward_ms
            + self._direct[point].cost_ms(size)
        )

    def probe_ms(self, point: AccessPoint) -> float:
        """A wasted round trip costs the connect time but moves no data."""
        return self._direct[point].connect_ms

    # ------------------------------------------------------------------
    # vectorized batch pricing (bit-identical to the scalar methods)
    # ------------------------------------------------------------------
    # Each override replays the scalar arithmetic elementwise in the same
    # operation order, so fast-engine totals match the per-request engine
    # bit-for-bit: ``size / KB`` is IEEE division in both worlds (int64
    # sizes are exact in float64), and the hierarchical walk accumulates
    # ``total += segment_cost`` level by level exactly like the loop above.

    @staticmethod
    def _segment_cost_batch(segment: Segment, sizes) -> "np.ndarray":
        return segment.connect_ms + (sizes / KB) * segment.per_kb_ms

    def hierarchical_ms_batch(self, point: AccessPoint, sizes) -> "np.ndarray":
        import numpy as np

        total = np.zeros(len(sizes), dtype=np.float64)
        for level in AccessPoint:
            total += self._segment_cost_batch(self._hier[level], sizes)
            if level is point:
                break
        return total

    def direct_ms_batch(self, point: AccessPoint, sizes) -> "np.ndarray":
        return self._segment_cost_batch(self._direct[point], sizes)

    def via_l1_ms_batch(self, point: AccessPoint, sizes) -> "np.ndarray":
        lan = self._segment_cost_batch(self._direct[AccessPoint.L1], sizes)
        if point is AccessPoint.L1:
            return lan
        return (lan + self._forward_ms) + self._segment_cost_batch(
            self._direct[point], sizes
        )
