"""Process-pool execution of experiments and architecture comparisons.

Work units follow the ``(experiment, trace, architecture)`` decomposition:

* :func:`run_experiments` fans whole experiments out -- each of the paper's
  17 artifacts is independent given a config, so this is the coarse grain
  that parallelizes the registry-wide ``--all`` run;
* :func:`run_comparison_parallel` fans the architectures of one comparison
  out -- each ``(trace, architecture)`` simulation is independent because
  architectures never share state and traces are shared read-only.

Workers never receive constructed architectures or generated traces.  They
receive **factory specs** (:class:`~repro.runner.specs.ArchitectureSpec`)
and ``(profile, seed)`` trace addresses, and rebuild both locally: fresh
architecture state preserves the freshness invariant
:func:`repro.sim.engine.run_comparison` enforces, and the worker-local
:class:`~repro.runner.trace_cache.TraceCache` (pointed at a shared on-disk
store when one is configured) keeps each distinct trace generated at most
once per worker -- or, with a warm store, zero times anywhere.

Determinism: a work unit's output depends only on its arguments, never on
scheduling, so ``jobs=N`` and ``jobs=1`` produce row-for-row identical
results; only wall-clock (and the timing notes derived from it) differs.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.common.timing import Stopwatch, format_seconds
from repro.obs import profiling
from repro.runner.specs import ArchitectureSpec
from repro.runner.trace_cache import (
    TraceCache,
    TraceCacheStats,
    cached_trace,
    get_trace_cache,
    set_trace_cache,
)
from repro.sim.engine import run_comparison, run_simulation
from repro.sim.metrics import SimMetrics
from repro.traces.profiles import WorkloadProfile

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.experiments.base import ExperimentResult
    from repro.faults.events import FaultPlan
    from repro.sim.config import ExperimentConfig


@dataclass
class StageTimings:
    """Per-stage wall-clock for one experiment run.

    ``simulate_s`` is everything inside ``run()`` that is not trace
    generation (dominated by the per-request simulation loops);
    ``render_s`` is filled in by the CLI after rendering the result.
    """

    experiment: str
    total_s: float
    trace_gen_s: float
    simulate_s: float
    render_s: float | None = None
    cache: TraceCacheStats = field(default_factory=TraceCacheStats)

    def note(self) -> str:
        """The ``[stage timing]`` line surfaced in ``ExperimentResult.notes``."""
        parts = [
            f"trace_gen={format_seconds(self.trace_gen_s)}",
            f"simulate={format_seconds(self.simulate_s)}",
        ]
        if self.render_s is not None:
            parts.append(f"render={format_seconds(self.render_s)}")
        return "[stage timing] " + " ".join(parts)

    def as_row(self) -> dict:
        return {
            "experiment": self.experiment,
            "total": format_seconds(self.total_s),
            "trace_gen": format_seconds(self.trace_gen_s),
            "simulate": format_seconds(self.simulate_s),
            "trace_generations": self.cache.generations,
        }


@dataclass
class RunSummary:
    """Everything a multi-experiment run produced, plus its instrumentation.

    Attributes:
        results: Experiment name -> result, in the order requested
            (identical for any ``jobs``).
        timings: Per-experiment stage timings, same order.
        cache_stats: Trace-cache counters aggregated across every process
            that participated in the run.  ``cache_stats.generations == 0``
            is the warm-cache proof the acceptance check looks for.
        jobs: Worker processes used (1 = in-process sequential).
        wall_s: End-to-end wall-clock for the whole run.
    """

    results: dict[str, "ExperimentResult"]
    timings: list[StageTimings]
    cache_stats: TraceCacheStats
    jobs: int
    wall_s: float

    def render(self) -> str:
        """The run summary block printed after a CLI run."""
        from repro.reporting.tables import format_table

        lines = [
            format_table(
                [t.as_row() for t in self.timings],
                title=f"run summary ({self.jobs} job{'s' if self.jobs != 1 else ''})",
            ),
            f"wall-clock: {format_seconds(self.wall_s)} "
            f"(sum of experiment time {format_seconds(sum(t.total_s for t in self.timings))})",
            self.cache_stats.describe(),
            f"trace generations this run: {self.cache_stats.generations}",
        ]
        return "\n".join(lines)


def _worker_init(cache_directory: str | None) -> None:
    """Give each worker its own trace cache over the shared disk store."""
    set_trace_cache(TraceCache(cache_directory))


def _run_experiment_task(
    name: str, config: "ExperimentConfig | None"
) -> tuple[str, "ExperimentResult", StageTimings]:
    """One experiment work unit (runs in a worker or inline for jobs=1)."""
    # Imported lazily: the registry pulls in every experiment module, and
    # experiments.base imports this package's trace cache.
    from repro.experiments.registry import get_experiment

    cache = get_trace_cache()
    before = cache.stats.snapshot()
    profiler = profiling.active()
    span = (
        profiler.span("experiment", category="runner", name=name)
        if profiler is not None
        else nullcontext()
    )
    with span, Stopwatch() as stopwatch:
        result = get_experiment(name)(config)
    delta = cache.stats.since(before)
    timings = StageTimings(
        experiment=name,
        total_s=stopwatch.elapsed,
        trace_gen_s=delta.generation_seconds,
        simulate_s=max(0.0, stopwatch.elapsed - delta.generation_seconds),
        cache=delta,
    )
    result.notes.append(timings.note())
    return name, result, timings


def run_experiments(
    names: Sequence[str],
    config: "ExperimentConfig | None" = None,
    *,
    jobs: int = 1,
    trace_cache_dir: str | None = None,
    progress: Callable[[StageTimings], None] | None = None,
) -> RunSummary:
    """Run several experiments, optionally across worker processes.

    Args:
        names: Experiment names from the registry, run/reported in order.
        config: Shared experiment config (None = each run defaults it).
        jobs: Worker processes; 1 runs inline in this process.
        trace_cache_dir: On-disk trace store shared by every participating
            process.  With ``jobs == 1`` this (re)installs the process-wide
            active cache pointed at the store.
        progress: Called with each experiment's :class:`StageTimings` as it
            completes (completion order, which for ``jobs > 1`` need not be
            input order) -- the CLI streams status lines from this.

    Raises whatever the first failing experiment raised; sibling work units
    already running are allowed to finish, queued ones are cancelled.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be at least 1, got {jobs}")
    names = list(names)
    if trace_cache_dir is not None and (
        jobs == 1 and get_trace_cache().directory != trace_cache_dir
    ):
        set_trace_cache(TraceCache(trace_cache_dir))

    outcomes: dict[str, tuple["ExperimentResult", StageTimings]] = {}
    with Stopwatch() as stopwatch:
        if jobs == 1:
            for name in names:
                _, result, timings = _run_experiment_task(name, config)
                outcomes[name] = (result, timings)
                if progress is not None:
                    progress(timings)
        else:
            with ProcessPoolExecutor(
                max_workers=jobs,
                initializer=_worker_init,
                initargs=(trace_cache_dir,),
            ) as pool:
                futures = {
                    pool.submit(_run_experiment_task, name, config): name
                    for name in names
                }
                try:
                    for future in as_completed(futures):
                        name, result, timings = future.result()
                        outcomes[name] = (result, timings)
                        if progress is not None:
                            progress(timings)
                except BaseException:
                    for future in futures:
                        future.cancel()
                    raise

    results = {name: outcomes[name][0] for name in names}
    timings = [outcomes[name][1] for name in names]
    totals = TraceCacheStats()
    for timing in timings:
        totals.merge(timing.cache)
    return RunSummary(
        results=results,
        timings=timings,
        cache_stats=totals,
        jobs=jobs,
        wall_s=stopwatch.elapsed,
    )


def _comparison_task(
    profile: WorkloadProfile,
    seed: int,
    spec: ArchitectureSpec,
    warmup_s: float | None,
    fault_plan: "FaultPlan | None" = None,
    journey_dir: str | None = None,
    include_uncachable: bool = False,
    timeline_dir: str | None = None,
    timeline_bin_s: float = 3600.0,
    engine: str = "reference",
    profiled: bool = False,
    profile_memory: bool = False,
) -> tuple[SimMetrics, "profiling.ProfileShard | None"]:
    """One (trace, architecture) simulation work unit.

    With ``journey_dir`` set, the unit also streams its journeys to
    ``<journey_dir>/<architecture>.jsonl``; with ``timeline_dir`` set it
    writes per-bin telemetry rows to ``<timeline_dir>/<architecture>.jsonl``.
    Each file is written whole by whichever process runs this unit and its
    contents are a pure function of the unit's arguments, so the exports
    are identical for any ``jobs``.

    With ``profiled`` the unit records a ``task`` span tree: into the
    already-attached profiler when one exists (the ``jobs=1`` coordinator),
    else into a worker-local :class:`~repro.obs.profiling.SpanProfiler`
    whose forest ships back as the returned
    :class:`~repro.obs.profiling.ProfileShard` (``None`` otherwise --
    profiling never changes the metrics, only this side channel).
    """
    own: "profiling.SpanProfiler | None" = None
    if profiled and profiling.active() is None:
        own = profiling.SpanProfiler(memory=profile_memory)
        profiling.attach(own)
    try:
        profiler = profiling.active() if profiled else None
        span = (
            profiler.span("task", category="runner")
            if profiler is not None
            else nullcontext()
        )
        with span as task_span:
            metrics = _comparison_task_body(
                profile,
                seed,
                spec,
                warmup_s,
                fault_plan,
                journey_dir,
                include_uncachable,
                timeline_dir,
                timeline_bin_s,
                engine,
            )
            if task_span is not None:
                task_span.attrs["arch"] = metrics.architecture
    finally:
        if own is not None:
            profiling.detach()
            own.close()
    return metrics, (own.shard() if own is not None else None)


def _comparison_task_body(
    profile: WorkloadProfile,
    seed: int,
    spec: ArchitectureSpec,
    warmup_s: float | None,
    fault_plan: "FaultPlan | None",
    journey_dir: str | None,
    include_uncachable: bool,
    timeline_dir: str | None,
    timeline_bin_s: float,
    engine: str,
) -> SimMetrics:
    profiler = profiling.active()
    if profiler is None:
        trace = cached_trace(profile, seed)
        architecture = spec.build()
    else:
        # ``trace_fetch`` exists whatever the cache state (memo hit, disk
        # hit, or generation -- the latter adds a ``trace_gen`` child), so
        # the span *structure* is identical at any jobs value once the
        # store is warm.
        with profiler.span("trace_fetch", category="runner") as span:
            trace = cached_trace(profile, seed)
            span.attrs["requests"] = len(trace.requests)
        with profiler.span("build", category="runner"):
            architecture = spec.build()
    telemetry = None
    if timeline_dir is not None:
        from repro.obs.telemetry import RunTelemetry

        telemetry = RunTelemetry(bin_s=timeline_bin_s)
    if journey_dir is None:
        metrics = run_simulation(
            trace,
            architecture,
            warmup_s=warmup_s,
            include_uncachable=include_uncachable,
            fault_plan=fault_plan,
            telemetry=telemetry,
            engine=engine,
        )
    else:
        from repro.obs.sink import JsonlJourneySink

        path = os.path.join(journey_dir, f"{architecture.name}.jsonl")
        with JsonlJourneySink(path, architecture=architecture.name) as sink:
            metrics = run_simulation(
                trace,
                architecture,
                warmup_s=warmup_s,
                include_uncachable=include_uncachable,
                fault_plan=fault_plan,
                journey_sink=sink,
                telemetry=telemetry,
                engine=engine,
            )
    if telemetry is not None:
        from repro.obs.export import write_timeline_jsonl

        export_span = (
            profiler.span("export", category="runner")
            if profiler is not None
            else nullcontext()
        )
        with export_span:
            write_timeline_jsonl(
                telemetry.rows,
                os.path.join(timeline_dir, f"{architecture.name}.jsonl"),
            )
    return metrics


def run_comparison_parallel(
    profile: WorkloadProfile,
    seed: int,
    specs: Sequence[ArchitectureSpec],
    *,
    jobs: int = 1,
    warmup_s: float | None = None,
    include_uncachable: bool = False,
    trace_cache_dir: str | None = None,
    fault_plan: "FaultPlan | None" = None,
    journey_dir: str | None = None,
    timeline_dir: str | None = None,
    timeline_bin_s: float = 3600.0,
    engine: str = "reference",
    profile_memory: bool = False,
    shards: int = 1,
    virtual_partitions: int | None = None,
    clock_lag_s: float = 3600.0,
) -> dict[str, SimMetrics]:
    """Parallel twin of :func:`repro.sim.engine.run_comparison`.

    Takes the trace's ``(profile, seed)`` address instead of a generated
    trace, and factory specs instead of constructed architectures, so the
    expensive objects are built where they are used.  Results are keyed by
    architecture name in spec order, exactly like ``run_comparison``.

    ``fault_plan`` (a pure value, picklable) rides along to every worker;
    each architecture's simulation replays it with a fresh injector, so
    faulted comparisons are as deterministic -- and as jobs-invariant --
    as clean ones.  ``include_uncachable`` forwards to every simulation,
    matching the serial comparison's knob.

    ``journey_dir`` enables structured trace export: each architecture's
    journeys land in ``<journey_dir>/<name>.jsonl`` (directory created if
    needed), written entirely by the process that ran that architecture --
    no cross-process interleaving, so each file is byte-identical for any
    ``jobs`` value.  ``timeline_dir`` does the same for telemetry: the
    unit attaches a fresh :class:`repro.obs.telemetry.RunTelemetry`
    (``timeline_bin_s``-wide bins) and writes the per-bin rows to
    ``<timeline_dir>/<name>.jsonl`` as canonical JSONL -- rows are a pure
    function of (trace, architecture, plan), so these files too are
    byte-identical for any ``jobs`` value.

    ``engine`` forwards to every :func:`~repro.sim.engine.run_simulation`;
    since the fast engine is metric-identical to the reference, results
    stay jobs- *and* engine-invariant.  ``engine="fast"`` with an
    architecture that has no vectorized kernel raises the same clean
    :class:`ValueError` the serial path (and the CLI) raises -- checked
    up front, before any worker process is spawned, so the failure never
    surfaces as an opaque in-worker traceback.

    When a :mod:`repro.obs.profiling` profiler is attached in the calling
    process, the comparison records a ``comparison`` span with one
    ``task`` subtree per architecture: recorded inline at ``jobs=1``,
    shipped back as :class:`~repro.obs.profiling.ProfileShard` values and
    re-parented (on worker pids) at ``jobs>1`` -- same tree shape either
    way, which the jobs-invariance pin checks.  ``profile_memory``
    forwards memory sampling to profiled workers.  Metrics are unchanged
    by profiling; with no profiler attached this path is byte-identical
    to before.

    ``shards > 1`` delegates to
    :func:`repro.runner.sharding.run_comparison_sharded`: the object
    space splits across per-shard engines (``virtual_partitions`` fixes
    the hash granularity, ``clock_lag_s`` bounds the virtual-clock lag)
    and the merged per-architecture metrics come back in the same
    ``dict[str, SimMetrics]`` shape.  Sharded runs do not support
    journey export or memory profiling; results are pinned invariant
    across shard counts, but -- by design -- differ from the unsharded
    ``shards=1`` path, which stays byte-identical to before.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be at least 1, got {jobs}")
    if shards > 1:
        if journey_dir is not None:
            raise ValueError("journey export is not supported with shards > 1")
        if profile_memory:
            raise ValueError("memory profiling is not supported with shards > 1")
        from repro.runner.sharding import (
            DEFAULT_VIRTUAL_PARTITIONS,
            run_comparison_sharded,
        )

        return run_comparison_sharded(
            profile,
            seed,
            specs,
            shards=shards,
            virtual_partitions=(
                virtual_partitions
                if virtual_partitions is not None
                else DEFAULT_VIRTUAL_PARTITIONS
            ),
            clock_lag_s=clock_lag_s,
            jobs=jobs,
            warmup_s=warmup_s,
            include_uncachable=include_uncachable,
            trace_cache_dir=trace_cache_dir,
            fault_plan=fault_plan,
            timeline_dir=timeline_dir,
            timeline_bin_s=timeline_bin_s,
            engine=engine,
        ).results
    if engine == "fast":
        # Pre-flight: building a spec is cheap (empty caches), and doing
        # it here turns an in-worker crash into the serial path's error.
        from repro.sim.fastpath import fast_unsupported_reason

        for spec in specs:
            reason = fast_unsupported_reason(spec.build())
            if reason is not None:
                raise ValueError(reason)
    if journey_dir is not None:
        os.makedirs(journey_dir, exist_ok=True)
    if timeline_dir is not None:
        os.makedirs(timeline_dir, exist_ok=True)
    profiler = profiling.active()
    profiled = profiler is not None
    comparison_span = (
        profiler.span("comparison", category="runner", jobs=jobs, engine=engine)
        if profiled
        else nullcontext()
    )
    with comparison_span as parent:
        if jobs == 1:
            if not profiled and journey_dir is None and timeline_dir is None:
                trace = cached_trace(profile, seed)
                return run_comparison(
                    trace,
                    [spec.build() for spec in specs],
                    warmup_s=warmup_s,
                    include_uncachable=include_uncachable,
                    fault_plan=fault_plan,
                    engine=engine,
                )
            outcomes = [
                _comparison_task(
                    profile,
                    seed,
                    spec,
                    warmup_s,
                    fault_plan,
                    journey_dir,
                    include_uncachable,
                    timeline_dir,
                    timeline_bin_s,
                    engine,
                    profiled,
                    profile_memory,
                )
                for spec in specs
            ]
        else:
            with ProcessPoolExecutor(
                max_workers=jobs, initializer=_worker_init, initargs=(trace_cache_dir,)
            ) as pool:
                futures = [
                    pool.submit(
                        _comparison_task,
                        profile,
                        seed,
                        spec,
                        warmup_s,
                        fault_plan,
                        journey_dir,
                        include_uncachable,
                        timeline_dir,
                        timeline_bin_s,
                        engine,
                        profiled,
                        profile_memory,
                    )
                    for spec in specs
                ]
                outcomes = [future.result() for future in futures]
        metrics = []
        for item, shard in outcomes:
            metrics.append(item)
            if shard is not None and profiler is not None:
                profiler.adopt(shard, parent=parent)
    results: dict[str, SimMetrics] = {}
    for item in metrics:
        if item.architecture in results:
            raise ValueError(f"duplicate architecture name {item.architecture!r}")
        results[item.architecture] = item
    return results
