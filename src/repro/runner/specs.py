"""Picklable architecture factory specs.

``run_comparison`` requires freshly constructed architectures, and the
parallel executor needs to build them *inside* worker processes -- shipping
a constructed architecture across a process boundary would both cost
serialization of its cache state and blur the freshness invariant.  An
:class:`ArchitectureSpec` is the deferred constructor call that crosses the
boundary instead: a module-level factory plus its arguments, all picklable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.hierarchy.base import Architecture


@dataclass(frozen=True)
class ArchitectureSpec:
    """A deferred, repeatable architecture construction.

    Attributes:
        factory: Module-level callable returning an
            :class:`~repro.hierarchy.base.Architecture` (a class like
            ``DataHierarchy`` works; a lambda or closure does not pickle).
        args: Positional arguments for ``factory``.
        kwargs: Keyword arguments for ``factory``.
    """

    factory: Callable[..., Architecture]
    args: tuple = ()
    kwargs: dict[str, Any] = field(default_factory=dict)

    def build(self) -> Architecture:
        """Construct a fresh architecture (new state on every call)."""
        architecture = self.factory(*self.args, **self.kwargs)
        if not isinstance(architecture, Architecture):
            raise TypeError(
                f"factory {self.factory!r} returned {type(architecture).__name__}, "
                "not an Architecture"
            )
        return architecture
