"""Parallel experiment runner and content-addressed trace cache.

The batching/caching backbone for reproducing the paper's artifacts at
scale:

* :mod:`repro.runner.fingerprint` -- content address of a synthetic trace
  (a trace is a pure function of ``(profile, seed)``);
* :mod:`repro.runner.trace_cache` -- in-process memo plus optional on-disk
  ``.npz`` store, so each distinct trace is generated exactly once per
  session/machine, with counters proving it;
* :mod:`repro.runner.specs` -- picklable architecture factory specs, so
  worker processes construct fresh state locally;
* :mod:`repro.runner.parallel` -- process-pool fan-out of registry runs and
  architecture comparisons, deterministic for any job count;
* :mod:`repro.runner.sharding` -- hash-partitioned shard engines over the
  same pool, deterministic for any shard count.

CLI surface: ``python -m repro.experiments --all --jobs 4 --trace-cache
~/.cache/repro-traces`` (add ``--shards N`` to the comparison verbs).
"""

from repro.runner.fingerprint import GENERATOR_VERSION, trace_fingerprint
from repro.runner.parallel import (
    RunSummary,
    StageTimings,
    run_comparison_parallel,
    run_experiments,
)
from repro.runner.sharding import (
    ShardedComparison,
    ShardPlan,
    run_comparison_sharded,
)
from repro.runner.specs import ArchitectureSpec
from repro.runner.trace_cache import (
    TraceCache,
    TraceCacheStats,
    cached_trace,
    get_trace_cache,
    set_trace_cache,
)

__all__ = [
    "ArchitectureSpec",
    "GENERATOR_VERSION",
    "RunSummary",
    "ShardPlan",
    "ShardedComparison",
    "StageTimings",
    "TraceCache",
    "TraceCacheStats",
    "cached_trace",
    "get_trace_cache",
    "run_comparison_parallel",
    "run_comparison_sharded",
    "run_experiments",
    "set_trace_cache",
    "trace_fingerprint",
]
