"""Content-addressed trace cache: generate each distinct trace once.

Two layers, consulted in order:

* an **in-process memo** (fingerprint -> :class:`~repro.traces.records.Trace`),
  so one CLI/pytest session never generates the same trace twice;
* an optional **on-disk store** (``<dir>/<fingerprint>.npz`` via the
  column-array serialization in :mod:`repro.traces.io`), so traces survive
  across sessions and are shared between the worker processes of a
  parallel run.

Traces handed out are shared **read-only**: nothing in the simulator
mutates a :class:`~repro.traces.records.Trace` (architectures only read
requests), which is what makes handing the same object to many
``run_simulation`` calls safe.  The cache keeps :class:`TraceCacheStats`
counters -- generations, hits per layer, and generation wall-clock -- so a
run summary can *prove* a warm run performed zero generations.

A module-level *active* cache backs :func:`cached_trace`, which is what
`repro.experiments.base.trace_for` and the other generation sites call;
installing a disk-backed cache (``--trace-cache DIR`` on the experiments
CLI) upgrades every experiment at once.

**Crash-recovery guarantees.**  The on-disk store is shared by every
worker of a parallel (or sharded) run, so it must survive workers dying
mid-write and foreign or truncated files appearing in the directory:

* *Publishes are atomic*: a store writes ``.{fingerprint}.{pid}.tmp.npz``
  and ``os.replace``\\ s it into place, so readers never observe a partial
  ``<fingerprint>.npz``.
* *Unreadable entries regenerate*: a truncated, corrupt, or foreign
  ``.npz`` under a fingerprint name raises ``TraceFormatError`` inside
  ``_load`` (the npz reader wraps member extraction, not just the open)
  and the cache regenerates the trace instead of crashing the run.
* *Temp files never leak*: a failed store unlinks its temp file on the
  way out (and a failed disk write does not fail the ``get`` -- the trace
  is already in memory), and each cache construction sweeps orphaned
  ``.tmp.npz`` files left by killed processes, skipping any whose writer
  pid is still alive.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.common.errors import TraceFormatError
from repro.common.timing import Stopwatch
from repro.obs import profiling
from repro.runner.fingerprint import trace_fingerprint
from repro.traces.io import read_trace, write_trace
from repro.traces.profiles import WorkloadProfile
from repro.traces.records import Trace
from repro.traces.synthetic import SyntheticTraceGenerator


@dataclass
class TraceCacheStats:
    """Instrumentation counters for one :class:`TraceCache`.

    Attributes:
        generations: Traces built from scratch by the generator (the
            expensive path the cache exists to avoid).
        generation_seconds: Wall-clock spent inside those generations.
        memory_hits: Requests served from the in-process memo.
        disk_hits: Requests served by deserializing an ``.npz`` file.
        disk_writes: Freshly generated traces persisted to the store.
    """

    generations: int = 0
    generation_seconds: float = 0.0
    memory_hits: int = 0
    disk_hits: int = 0
    disk_writes: int = 0

    def snapshot(self) -> "TraceCacheStats":
        """An independent copy (for before/after deltas)."""
        return replace(self)

    def since(self, earlier: "TraceCacheStats") -> "TraceCacheStats":
        """Counter deltas accumulated after ``earlier`` was snapshotted."""
        return TraceCacheStats(
            generations=self.generations - earlier.generations,
            generation_seconds=self.generation_seconds - earlier.generation_seconds,
            memory_hits=self.memory_hits - earlier.memory_hits,
            disk_hits=self.disk_hits - earlier.disk_hits,
            disk_writes=self.disk_writes - earlier.disk_writes,
        )

    def merge(self, other: "TraceCacheStats") -> None:
        """Fold another stats object (e.g. a worker's delta) into this one."""
        self.generations += other.generations
        self.generation_seconds += other.generation_seconds
        self.memory_hits += other.memory_hits
        self.disk_hits += other.disk_hits
        self.disk_writes += other.disk_writes

    def describe(self) -> str:
        """One-line human rendering for run summaries."""
        return (
            f"traces: {self.generations} generated "
            f"({self.generation_seconds:.1f}s), "
            f"{self.memory_hits} memory hits, {self.disk_hits} disk hits, "
            f"{self.disk_writes} disk writes"
        )


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process on this host (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists but not ours
        return True
    except OSError:  # pragma: no cover - platform oddity: assume alive
        return True
    return True


class TraceCache:
    """Memoizing trace factory keyed by content fingerprint.

    Args:
        directory: Optional on-disk store.  Created on first write; shared
            safely between concurrent processes (writes are atomic
            temp-file + rename, and identical fingerprints imply identical
            bytes, so a lost race wastes one generation, never corrupts).
    """

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self.directory = os.fspath(directory) if directory is not None else None
        self.stats = TraceCacheStats()
        self._memory: dict[str, Trace] = {}
        self._sweep_orphans()

    def get(self, profile: WorkloadProfile, seed: int) -> Trace:
        """The trace for ``(profile, seed)``: memo, then disk, then generate."""
        fingerprint = trace_fingerprint(profile, seed)
        trace = self._memory.get(fingerprint)
        if trace is not None:
            self.stats.memory_hits += 1
            return trace
        trace = self._load(fingerprint)
        if trace is None:
            profiler = profiling.active()
            if profiler is None:
                with Stopwatch() as watch:
                    trace = SyntheticTraceGenerator(profile, seed=seed).generate()
            else:
                with profiler.span(
                    "trace_gen",
                    category="runner",
                    profile=profile.name,
                    seed=seed,
                    fingerprint=fingerprint[:12],
                ) as span, Stopwatch() as watch:
                    trace = SyntheticTraceGenerator(profile, seed=seed).generate()
                    span.attrs["requests"] = len(trace.requests)
            self.stats.generation_seconds += watch.elapsed
            self.stats.generations += 1
            self._store(fingerprint, trace)
        self._memory[fingerprint] = trace
        return trace

    def clear_memory(self) -> None:
        """Drop the in-process memo (disk files are left in place)."""
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, fingerprint: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"{fingerprint}.npz")

    def _load(self, fingerprint: str) -> Trace | None:
        if self.directory is None:
            return None
        path = self._path(fingerprint)
        if not os.path.exists(path):
            return None
        try:
            trace = read_trace(path)
        except TraceFormatError:
            # Unreadable entry (truncated write from a killed process, or
            # foreign file): regenerate rather than fail the run.
            return None
        self.stats.disk_hits += 1
        return trace

    def _sweep_orphans(self) -> None:
        """Remove ``.tmp.npz`` files orphaned by killed writer processes.

        Temp names embed the writer's pid; a file whose writer is still
        alive is left alone (it is mid-write and about to be renamed), so
        the sweep is safe to run while sibling workers share the store.
        """
        if self.directory is None or not os.path.isdir(self.directory):
            return
        for name in os.listdir(self.directory):
            if not (name.startswith(".") and name.endswith(".tmp.npz")):
                continue
            parts = name.split(".")
            # ".{fingerprint}.{pid}.tmp.npz" -> ["", fp, pid, "tmp", "npz"]
            try:
                pid = int(parts[-3])
            except (IndexError, ValueError):
                pid = None
            if pid is not None and _pid_alive(pid):
                continue
            try:
                os.unlink(os.path.join(self.directory, name))
            except OSError:
                pass

    def _store(self, fingerprint: str, trace: Trace) -> None:
        if self.directory is None:
            return
        path = self._path(fingerprint)
        temporary = os.path.join(
            self.directory, f".{fingerprint}.{os.getpid()}.tmp.npz"
        )
        # Atomic publish: concurrent workers may race on the same
        # fingerprint; both produce identical bytes and os.replace makes
        # whichever finishes last win without readers ever seeing a
        # partial file.  A failed write (disk full, permissions) must not
        # fail the run -- the trace is already in memory -- and must not
        # leak its temp file.
        try:
            os.makedirs(self.directory, exist_ok=True)
            write_trace(trace, temporary)
            os.replace(temporary, path)
        except OSError:
            return
        finally:
            try:
                os.unlink(temporary)
            except OSError:
                pass
        self.stats.disk_writes += 1


_ACTIVE = TraceCache()


def get_trace_cache() -> TraceCache:
    """The process-wide cache backing :func:`cached_trace`."""
    return _ACTIVE


def set_trace_cache(cache: TraceCache) -> TraceCache:
    """Install a new active cache; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = cache
    return previous


def cached_trace(profile: WorkloadProfile, seed: int) -> Trace:
    """Fetch-or-generate a trace through the active cache (read-only share)."""
    return _ACTIVE.get(profile, seed)
