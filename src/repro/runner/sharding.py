"""Sharded multi-process simulation with shard-count-invariant results.

The single-process engine caps the population one comparison can hold in
memory; this module hash-partitions the **object space** across shard
engines so a run's working set splits across worker processes -- the
partitioning/replication shape of distributed cache deployments (and of
the cooperative-caching literature the README surveys).

Three layers make shard counts invisible in the results:

* **Fixed virtual partitions.**  A :class:`ShardPlan` maps every object
  id to one of ``virtual_partitions`` *virtual* partitions via a stable
  hash (:func:`repro.common.ids.partition_of_object` -- never Python's
  randomized ``hash``).  Each virtual partition gets its own sub-trace
  (its objects' requests, time order preserved), its own architecture
  instance (full L1 client population -- the client -> L1 mapping is
  topology-stable, so every partition sees the same proxy fabric), and
  its own replacement-policy RNG stream
  (:meth:`repro.cache.policy.PolicySpec.for_partition`, keyed on
  partition identity).  Physical shards own *sets* of virtual partitions
  through a consistent-hash ring, so changing ``shards`` only regroups
  identical per-partition computations.

* **Bounded-lag virtual clock.**  A shard engine round-robins its
  partitions' :class:`~repro.sim.engine.SimulationStepper` instances in
  fixed partition order, advancing each to a shared horizon of
  ``min(next event time) + clock_lag_s``: no partition's clock ever runs
  more than the lag window ahead of the slowest, so cross-partition
  interleaving cannot reorder observable state transitions.  Peer
  resolution is shard-aware -- hint/ICP/directory lookups stay inside
  the partition that owns the object, enforced per request by
  :meth:`repro.hierarchy.base.Architecture.check_shard_owns` (a routing
  leak raises :class:`~repro.common.errors.ShardRoutingError` instead of
  silently breaking invariance).

* **Canonical-order merge.**  Workers return per-partition results
  *unmerged*; the coordinator folds
  :meth:`repro.sim.metrics.SimMetrics.merge` and
  :func:`repro.obs.telemetry.merge_timeline_rows` in ascending partition
  order -- exactly the way :func:`~repro.runner.parallel.run_comparison_parallel`
  already merges per-architecture outputs, with the float-addition order
  pinned.  Identical per-partition values folded in an identical order
  are bit-identical for any shard count and any job count.

Note the modelling consequence: a sharded run partitions each cache's
population by object (per-partition capacities and per-partition L1
populations), so its absolute numbers differ from an unsharded
``run_comparison`` over the same trace.  The invariance contract is
between sharded runs: ``--shards 1`` and ``--shards 4`` are pinned
identical, which is what lets a population larger than one process holds
run across many.

Fault plans replay per partition (every partition sees the same node
crash/recover schedule), which keeps faulted runs shard-count invariant
too; merged timeline *gauges* are summed across partitions (occupancy
adds; a mirrored per-node up flag comes back scaled by the partition
count -- see :func:`repro.obs.telemetry.merge_timeline_rows`).
"""

from __future__ import annotations

import bisect
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Sequence

from repro.common.ids import mix64, partitions_of_objects
from repro.common.timing import Stopwatch
from repro.hierarchy.base import Architecture, ShardInfo
from repro.runner.specs import ArchitectureSpec
from repro.runner.trace_cache import cached_trace
from repro.sim.engine import SimulationStepper, run_simulation
from repro.sim.metrics import SimMetrics
from repro.traces.profiles import WorkloadProfile
from repro.traces.records import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.events import FaultPlan

#: Default number of virtual partitions.  Fixed independently of the
#: shard count -- this is the invariance anchor: results depend on the
#: partition layout, never on how partitions are grouped into shards.
DEFAULT_VIRTUAL_PARTITIONS = 16

#: Ring points per shard on the consistent-hash ring.  Enough replicas
#: to spread partitions evenly at small shard counts.
RING_REPLICAS = 64


@dataclass(frozen=True)
class ShardPlan:
    """How one sharded run partitions the object space.

    Attributes:
        shards: Physical shard engines (process-pool work units per
            architecture).
        virtual_partitions: Fixed hash-space granularity; must be at
            least ``shards``.  Changing it changes results (it reshapes
            every partition's sub-trace); changing ``shards`` never does.
        clock_lag_s: Bounded-lag window for the virtual-clock sync, in
            simulated seconds.  Any positive value yields identical
            results (partitions share no object state); smaller values
            tighten interleaving at the cost of more round-robin passes.
    """

    shards: int
    virtual_partitions: int = DEFAULT_VIRTUAL_PARTITIONS
    clock_lag_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be at least 1, got {self.shards}")
        if self.virtual_partitions < self.shards:
            raise ValueError(
                f"virtual_partitions ({self.virtual_partitions}) must be >= "
                f"shards ({self.shards}); each shard owns at least one"
            )
        if self.clock_lag_s <= 0:
            raise ValueError(
                f"clock_lag_s must be positive, got {self.clock_lag_s}"
            )

    @cached_property
    def _ring(self) -> tuple[list[int], list[int]]:
        """Sorted (point hashes, owning shard) consistent-hash ring."""
        points = sorted(
            (mix64(0x5348_4152_4421, shard, replica), shard)
            for shard in range(self.shards)
            for replica in range(RING_REPLICAS)
        )
        return [point for point, _ in points], [shard for _, shard in points]

    def owner_of(self, partition: int) -> int:
        """The shard owning ``partition`` (first ring point clockwise)."""
        if not 0 <= partition < self.virtual_partitions:
            raise ValueError(
                f"partition {partition} outside [0, {self.virtual_partitions})"
            )
        hashes, shards = self._ring
        index = bisect.bisect_right(hashes, mix64(0x5041_5254, partition))
        return shards[index % len(shards)]

    def partitions_of_shard(self, shard: int) -> tuple[int, ...]:
        """The virtual partitions ``shard`` owns, ascending."""
        if not 0 <= shard < self.shards:
            raise ValueError(f"shard {shard} outside [0, {self.shards})")
        return tuple(
            partition
            for partition in range(self.virtual_partitions)
            if self.owner_of(partition) == shard
        )

    def shard_info(self, partition: int) -> ShardInfo:
        """The :class:`~repro.hierarchy.base.ShardInfo` for one partition."""
        return ShardInfo(
            partition=partition, virtual_partitions=self.virtual_partitions
        )


def partition_spec(spec: ArchitectureSpec, partition: int) -> ArchitectureSpec:
    """The factory spec for one virtual partition's architecture.

    Rewrites every :class:`~repro.cache.policy.PolicySpec` keyword
    through :meth:`~repro.cache.policy.PolicySpec.for_partition`, so the
    Random policy's victim streams are decorrelated across partitions by
    stable identity.  Everything else passes through unchanged -- every
    partition gets the full topology (same proxy fabric, same per-node
    capacities over its slice of the object space).
    """
    from repro.cache.policy import PolicySpec

    rewritten = {
        key: value.for_partition(partition)
        if isinstance(value, PolicySpec)
        else value
        for key, value in spec.kwargs.items()
    }
    if rewritten == spec.kwargs:
        return spec
    return ArchitectureSpec(spec.factory, spec.args, rewritten)


def split_trace(trace: Trace, plan: ShardPlan) -> list[Trace]:
    """Split a trace into per-partition sub-traces (time order preserved).

    Each sub-trace keeps the parent's metadata (``n_objects``,
    ``n_clients``, ``duration``, ``warmup``), so warmup boundaries and
    timeline bin layouts agree across partitions; only the request rows
    are filtered to the partition's objects.
    """
    import numpy as np

    columns = trace.columns()
    owners = partitions_of_objects(columns.object, plan.virtual_partitions)
    from repro.traces.columns import TraceColumns

    sub_traces: list[Trace] = []
    for partition in range(plan.virtual_partitions):
        mask = owners == partition
        sub_columns = TraceColumns(
            time=np.ascontiguousarray(columns.time[mask]),
            client=np.ascontiguousarray(columns.client[mask]),
            object=np.ascontiguousarray(columns.object[mask]),
            size=np.ascontiguousarray(columns.size[mask]),
            version=np.ascontiguousarray(columns.version[mask]),
            cacheable=np.ascontiguousarray(columns.cacheable[mask]),
            error=np.ascontiguousarray(columns.error[mask]),
        )
        sub_traces.append(
            Trace.from_columns(
                profile_name=trace.profile_name,
                columns=sub_columns,
                n_objects=trace.n_objects,
                n_clients=trace.n_clients,
                duration=trace.duration,
                warmup=trace.warmup,
            )
        )
    return sub_traces


def advance_bounded_lag(
    steppers: Sequence[SimulationStepper], lag_s: float
) -> None:
    """Drive several steppers under the bounded-lag virtual clock.

    Repeatedly advances every unfinished stepper -- in the fixed order
    given -- to ``min(next event time) + lag_s``, so no partition's clock
    ever exceeds the globally slowest by more than the lag window.  Each
    pass drains at least the slowest stepper's next request, so the loop
    terminates after finitely many passes.
    """
    if lag_s <= 0:
        raise ValueError(f"lag_s must be positive, got {lag_s}")
    active = [stepper for stepper in steppers if not stepper.exhausted]
    while active:
        horizon = min(stepper.next_time for stepper in active) + lag_s
        for stepper in active:
            stepper.advance(horizon)
        active = [stepper for stepper in active if not stepper.exhausted]


@dataclass
class ShardedComparison:
    """Everything one sharded comparison produced.

    Attributes:
        plan: The shard plan the run executed under.
        results: Architecture name -> merged :class:`SimMetrics`, in spec
            order -- the same shape :func:`run_comparison_parallel`
            returns, and the object the invariance pins compare.
        partition_metrics: Architecture name -> per-partition metrics in
            ascending partition order (the unmerged inputs).
        partition_requests: Requests per partition (sums to the trace).
        partition_objects: Distinct objects per partition -- the
            working-set split: with ``N`` shards each engine holds about
            ``1/N`` of the population, which is the scaling claim the
            EXPERIMENTS log records.
        timeline_rows: Architecture name -> merged timeline rows (empty
            when the run collected no telemetry).
        wall_s: End-to-end wall-clock of the comparison.
    """

    plan: ShardPlan
    results: dict[str, SimMetrics]
    partition_metrics: dict[str, list[SimMetrics]]
    partition_requests: list[int]
    partition_objects: list[int]
    timeline_rows: dict[str, list[dict]] = field(default_factory=dict)
    wall_s: float = 0.0

    @property
    def max_shard_objects(self) -> int:
        """Distinct objects held by the fullest shard (working-set peak)."""
        per_shard = [0] * self.plan.shards
        for partition, count in enumerate(self.partition_objects):
            per_shard[self.plan.owner_of(partition)] += count
        return max(per_shard)


def _simulate_partition(
    sub_trace: Trace,
    architecture: Architecture,
    *,
    warmup_s: float | None,
    include_uncachable: bool,
    fault_plan: "FaultPlan | None",
    telemetry,
    engine: str,
) -> SimulationStepper | SimMetrics:
    """One partition's run: a stepper (reference) or finished metrics (fast)."""
    if engine == "reference":
        return SimulationStepper(
            sub_trace,
            architecture,
            warmup_s=warmup_s,
            include_uncachable=include_uncachable,
            fault_plan=fault_plan,
            telemetry=telemetry,
        )
    return run_simulation(
        sub_trace,
        architecture,
        warmup_s=warmup_s,
        include_uncachable=include_uncachable,
        fault_plan=fault_plan,
        telemetry=telemetry,
        engine=engine,
    )


def _shard_task(
    profile: WorkloadProfile,
    seed: int,
    spec: ArchitectureSpec,
    shard: int,
    plan: ShardPlan,
    warmup_s: float | None,
    include_uncachable: bool,
    fault_plan: "FaultPlan | None",
    collect_timeline: bool,
    timeline_bin_s: float,
    engine: str,
) -> list[tuple[int, SimMetrics, list[dict] | None, int]]:
    """One (architecture, shard) work unit.

    Runs every virtual partition the shard owns and returns the
    *unmerged* per-partition results ``(partition, metrics, timeline
    rows, distinct objects)`` -- merging happens in the coordinator, in
    canonical partition order, so the fold order never depends on which
    worker ran what.

    Under ``engine="reference"`` the shard's partitions run interleaved
    through :func:`advance_bounded_lag`; the fast engine runs each
    partition's columnar batch whole (partitions share no object state,
    so the schedules are observably equivalent -- pinned by the
    engine-invariance test).
    """
    trace = cached_trace(profile, seed)
    owned = plan.partitions_of_shard(shard)
    sub_traces = split_trace(trace, plan)

    telemetry_for = {}
    runs: list[tuple[int, SimulationStepper | SimMetrics]] = []
    for partition in owned:
        architecture = partition_spec(spec, partition).build()
        architecture.bind_shard(plan.shard_info(partition))
        telemetry = None
        if collect_timeline:
            from repro.obs.telemetry import RunTelemetry

            telemetry = RunTelemetry(bin_s=timeline_bin_s)
            telemetry_for[partition] = telemetry
        runs.append(
            (
                partition,
                _simulate_partition(
                    sub_traces[partition],
                    architecture,
                    warmup_s=warmup_s,
                    include_uncachable=include_uncachable,
                    fault_plan=fault_plan,
                    telemetry=telemetry,
                    engine=engine,
                ),
            )
        )
    advance_bounded_lag(
        [run for _, run in runs if isinstance(run, SimulationStepper)],
        plan.clock_lag_s,
    )

    results = []
    for partition, run in runs:
        metrics = run.finish() if isinstance(run, SimulationStepper) else run
        rows = (
            list(telemetry_for[partition].rows) if collect_timeline else None
        )
        results.append(
            (
                partition,
                metrics,
                rows,
                sub_traces[partition].distinct_objects(),
            )
        )
    return results


def run_comparison_sharded(
    profile: WorkloadProfile,
    seed: int,
    specs: Sequence[ArchitectureSpec],
    *,
    shards: int,
    virtual_partitions: int = DEFAULT_VIRTUAL_PARTITIONS,
    clock_lag_s: float = 3600.0,
    jobs: int = 1,
    warmup_s: float | None = None,
    include_uncachable: bool = False,
    trace_cache_dir: str | None = None,
    fault_plan: "FaultPlan | None" = None,
    timeline_dir: str | None = None,
    timeline_bin_s: float = 3600.0,
    engine: str = "reference",
) -> ShardedComparison:
    """Sharded twin of :func:`~repro.runner.parallel.run_comparison_parallel`.

    Fans ``len(specs) * shards`` work units into the process pool (one
    per architecture per shard; ``jobs=1`` runs them inline) and merges
    the per-partition outputs in canonical partition order.  Results are
    bit-identical for any ``shards`` (given the same
    ``virtual_partitions``), any ``jobs``, and any ``clock_lag_s`` --
    the shard-count-invariance pins assert exactly this.

    ``timeline_dir`` mirrors the parallel runner: merged per-bin rows
    land in ``<timeline_dir>/<architecture>.jsonl``, canonical JSONL,
    byte-identical for any shard/job count.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be at least 1, got {jobs}")
    plan = ShardPlan(
        shards=shards,
        virtual_partitions=virtual_partitions,
        clock_lag_s=clock_lag_s,
    )
    if engine == "fast":
        # Same pre-flight as the parallel runner: fail with the serial
        # path's error before any worker is spawned.
        from repro.sim.fastpath import fast_unsupported_reason

        for spec in specs:
            reason = fast_unsupported_reason(spec.build())
            if reason is not None:
                raise ValueError(reason)
    collect_timeline = timeline_dir is not None

    tasks = [
        (spec_index, shard)
        for spec_index in range(len(specs))
        for shard in range(plan.shards)
    ]
    with Stopwatch() as stopwatch:
        if jobs == 1:
            outcomes = [
                _shard_task(
                    profile,
                    seed,
                    specs[spec_index],
                    shard,
                    plan,
                    warmup_s,
                    include_uncachable,
                    fault_plan,
                    collect_timeline,
                    timeline_bin_s,
                    engine,
                )
                for spec_index, shard in tasks
            ]
        else:
            from repro.runner.parallel import _worker_init

            with ProcessPoolExecutor(
                max_workers=jobs,
                initializer=_worker_init,
                initargs=(trace_cache_dir,),
            ) as pool:
                futures = [
                    pool.submit(
                        _shard_task,
                        profile,
                        seed,
                        specs[spec_index],
                        shard,
                        plan,
                        warmup_s,
                        include_uncachable,
                        fault_plan,
                        collect_timeline,
                        timeline_bin_s,
                        engine,
                    )
                    for spec_index, shard in tasks
                ]
                outcomes = [future.result() for future in futures]

    # Regroup: (spec index -> partition -> (metrics, rows)); completion
    # order never matters because every partition lands in its slot.
    by_spec: list[dict[int, tuple[SimMetrics, list[dict] | None]]] = [
        {} for _ in specs
    ]
    partition_objects = [0] * plan.virtual_partitions
    for (spec_index, _shard), task_results in zip(tasks, outcomes):
        for partition, metrics, rows, objects in task_results:
            by_spec[spec_index][partition] = (metrics, rows)
            partition_objects[partition] = objects

    results: dict[str, SimMetrics] = {}
    partition_metrics: dict[str, list[SimMetrics]] = {}
    timeline_rows: dict[str, list[dict]] = {}
    partition_requests = [0] * plan.virtual_partitions
    for spec_index in range(len(specs)):
        slots = by_spec[spec_index]
        ordered = [slots[partition] for partition in range(plan.virtual_partitions)]
        merged: SimMetrics | None = None
        for metrics, _rows in ordered:
            if merged is None:
                merged = SimMetrics(
                    architecture=metrics.architecture,
                    cost_model=metrics.cost_model,
                )
            merged.merge(metrics)
        assert merged is not None  # virtual_partitions >= 1
        if merged.architecture in results:
            raise ValueError(
                f"duplicate architecture name {merged.architecture!r}"
            )
        merged.validate()
        results[merged.architecture] = merged
        partition_metrics[merged.architecture] = [m for m, _ in ordered]
        if spec_index == 0:
            for partition, (metrics, _rows) in enumerate(ordered):
                partition_requests[partition] = (
                    metrics.measured_requests
                    + metrics.warmup_requests
                    + metrics.skipped_error
                    + metrics.skipped_uncachable
                )
        if collect_timeline:
            from repro.obs.telemetry import merge_timeline_rows

            timeline_rows[merged.architecture] = merge_timeline_rows(
                [rows for _metrics, rows in ordered]
            )

    if timeline_dir is not None:
        import os

        from repro.obs.export import write_timeline_jsonl

        os.makedirs(timeline_dir, exist_ok=True)
        for name, rows in timeline_rows.items():
            write_timeline_jsonl(
                rows, os.path.join(timeline_dir, f"{name}.jsonl")
            )

    return ShardedComparison(
        plan=plan,
        results=results,
        partition_metrics=partition_metrics,
        partition_requests=partition_requests,
        partition_objects=partition_objects,
        timeline_rows=timeline_rows,
        wall_s=stopwatch.elapsed,
    )
