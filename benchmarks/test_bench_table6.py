"""Bench: regenerate Table 6 (speedup of hints over the hierarchy)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import table6


def test_bench_table6(benchmark, bench_config):
    result = run_once(benchmark, table6.run, bench_config)
    print("\n" + result.render())

    assert len(result.rows) == 3
    for row in result.rows:
        # Paper band 1.28-2.79; every measured ratio must exceed 1.15 and
        # respect the published ordering testbed > max > min.
        assert row["testbed"] > row["max"] > row["min"] > 1.15, row
        # Within 35% of the paper's cell values despite the scaled traces.
        for model in ("max", "min", "testbed"):
            paper_value = row[f"paper_{model}"]
            assert abs(row[model] - paper_value) / paper_value < 0.35, (row, model)
