"""Bench: regenerate Figure 11 (push efficiency and bandwidth)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure11


def test_bench_figure11(benchmark, bench_config):
    result = run_once(benchmark, figure11.run, bench_config)
    print("\n" + result.render())

    by_system = {row["system"]: row for row in result.rows}
    update = by_system["hints+update-push"]
    push1 = by_system["hints+push-1"]
    push_all = by_system["hints+push-all"]

    # Update push is the most efficient pusher (paper: ~1/3 used; the
    # hierarchical algorithms run at 4-13%).
    assert update["efficiency"] > push_all["efficiency"]
    assert 0.01 < push_all["efficiency"] < 0.35
    # Aggressiveness monotonically trades efficiency for bandwidth.
    assert push1["efficiency"] >= push_all["efficiency"]
    assert push_all["push_bw_bytes_per_s"] > push1["push_bw_bytes_per_s"]
    # Hierarchical push inflates total bandwidth severalfold vs demand-only
    # (paper: up to ~4x; scaled runs can exceed it, aggressive modes more so).
    assert push1["bw_inflation_vs_demand_only"] > 1.5
    assert (
        push_all["bw_inflation_vs_demand_only"]
        > push1["bw_inflation_vs_demand_only"]
    )
    # Update push is targeted: its bandwidth cost is small.
    assert update["bw_inflation_vs_demand_only"] < push1["bw_inflation_vs_demand_only"]
