"""Bench: message-level hint propagation latency (sections 3.1.1 + 3.2).

Runs the real wire protocol -- 20-byte updates, 0-60 s randomized
batching per hop, tree forwarding -- over the paper's 64-proxy metadata
hierarchy and measures how stale hint caches actually get.  The measured
distribution must land inside Figure 6's safe zone (a few minutes), which
is the paper's argument that the batched-update design is fast enough.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.common.ids import object_id_from_url
from repro.hints.cluster import HintCluster
from repro.hints.wire import UPDATE_RECORD_BYTES


def propagate(n_objects: int = 40, seed: int = 11) -> dict:
    cluster = HintCluster.balanced(
        branching=8, leaves=64, link_latency_s=0.1, seed=seed
    )
    rng = np.random.default_rng(seed)
    hashes = [object_id_from_url(f"http://bench-{i}.example.com/") for i in range(n_objects)]
    origins: dict[int, int] = {}
    for i, url_hash in enumerate(hashes):
        origin = int(rng.integers(0, 64))
        origins[url_hash] = origin
        cluster.local_inform(origin, url_hash, now=float(i))
    cluster.run_until(3600.0)
    delays = []
    for url_hash in hashes:
        delays.extend(cluster.visibility_delays(url_hash, origin=origins[url_hash]))
    return {
        "coverage": float(np.mean([cluster.coverage(h) for h in hashes])),
        "mean_delay_s": float(np.mean(delays)),
        "p95_delay_s": float(np.percentile(delays, 95)),
        "max_delay_s": float(np.max(delays)),
        "bytes_sent": sum(cluster.bytes_sent),
        "batches": cluster.batches_sent,
    }


def test_bench_propagation(benchmark):
    stats = run_once(benchmark, propagate)
    print(
        "\nmessage-level hint propagation over the 64-proxy tree:\n"
        f"  coverage:      {stats['coverage']:.3f}\n"
        f"  mean delay:    {stats['mean_delay_s']:.0f} s\n"
        f"  p95 delay:     {stats['p95_delay_s']:.0f} s\n"
        f"  max delay:     {stats['max_delay_s']:.0f} s\n"
        f"  batches sent:  {stats['batches']}\n"
        f"  bytes sent:    {stats['bytes_sent']}"
    )
    # Every hint cache learns of every copy.
    assert stats["coverage"] == 1.0
    # Staleness sits in Figure 6's tolerable zone: minutes, not hours.
    assert stats["mean_delay_s"] < 4 * 60
    assert stats["max_delay_s"] < 10 * 60
    # Batching amortizes: far fewer batches than update deliveries.
    deliveries = stats["bytes_sent"] / UPDATE_RECORD_BYTES
    assert stats["batches"] < deliveries
