"""Bench: achievable hit rate vs client population (the section 2.2 claim)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import scaling


def test_bench_scaling(benchmark, bench_config):
    result = run_once(benchmark, scaling.run, bench_config)
    print("\n" + result.render())

    ratios = [row["system_hit_ratio"] for row in result.rows]
    # More sharing, higher achievable hit rate -- monotone with a real gain
    # across an 8x population range.
    assert all(b >= a - 0.01 for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] > ratios[0] + 0.08
