"""Microbenchmark: hint-cache lookup latency (paper section 3.2.1).

The prototype measured 4.3 microseconds for an in-memory hint lookup and
10.8 ms when the hint had to be faulted in from a 1997 disk.  This bench
times the same operation against the packed-array hint cache (in-memory)
and the mmap-backed store (warm page cache), both at the prototype's
4-way associativity and 16-byte records.

These are true pytest-benchmark microbenchmarks (many iterations), unlike
the one-shot experiment regenerations in the other bench modules.
"""

from __future__ import annotations

import pytest

from repro.common.ids import object_id_from_url
from repro.hints.hintcache import HINT_RECORD_BYTES, HintCache
from repro.hints.records import MachineId
from repro.hints.storage import MmapHintStore

N_ENTRIES = 1 << 15  # 32k hints = 512 KiB, a scaled 10%-of-disk hint store


@pytest.fixture(scope="module")
def populated_cache():
    cache = HintCache(capacity_bytes=N_ENTRIES * HINT_RECORD_BYTES)
    hashes = [object_id_from_url(f"http://h{i}.example.com/") for i in range(5000)]
    for i, url_hash in enumerate(hashes):
        cache.inform(url_hash, MachineId.for_node(i % 64))
    return cache, hashes


def test_bench_hint_lookup_in_memory(benchmark, populated_cache):
    """The 4.3 us in-memory lookup of section 3.2.1."""
    cache, hashes = populated_cache
    probe = hashes[1234]

    result = benchmark(cache.find_nearest, probe)
    assert result is not None
    # Modern hardware + Python should land within ~50x of the 1997 figure.
    assert benchmark.stats["mean"] < 250e-6


def test_bench_hint_lookup_miss(benchmark, populated_cache):
    """Lookups that miss cost the same single-set scan."""
    cache, _hashes = populated_cache
    absent = object_id_from_url("http://never-cached.example.com/")

    result = benchmark(cache.find_nearest, absent)
    assert result is None


def test_bench_hint_insert(benchmark, populated_cache):
    """The inform path: one set scan plus a 16-byte write."""
    cache, hashes = populated_cache
    machine = MachineId.for_node(7)

    benchmark(cache.inform, hashes[99], machine)


def test_bench_mmap_lookup_warm(benchmark, tmp_path):
    """The mmap-backed store with a warm page cache."""
    with MmapHintStore(
        tmp_path / "bench-hints.db", capacity_bytes=N_ENTRIES * HINT_RECORD_BYTES
    ) as store:
        hashes = [object_id_from_url(f"http://m{i}.example.com/") for i in range(2000)]
        for i, url_hash in enumerate(hashes):
            store.inform(url_hash, MachineId.for_node(i % 64))

        result = benchmark(store.find_nearest, hashes[777])
        assert result is not None
