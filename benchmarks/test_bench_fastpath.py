"""Bench: columnar fast engine vs the reference engine, with parity gate.

Two regimes are timed for each kernelized architecture (min-of-N,
interleaved so a cache-cold or preempted round cannot skew one side):

* **cold** -- a fresh architecture over the full trace.  Dominated by
  compulsory misses, i.e. by the *shared* mutable state both engines
  drive identically (LRU inserts, hint informs), so the speedup here is
  modest by construction.
* **warm** -- a second pass over the already-warmed architecture.  This
  is the steady state the paper measures (caches warm for two days of
  trace before measurement starts) and the regime the columnar engine
  exists for: large-scale Table-4-style runs where hits dominate and the
  reference engine's per-request object churn is pure overhead.

Every timed run is parity-gated: cold fast metrics must equal cold
reference metrics byte-for-byte, and likewise warm (both engines warm
the architecture identically, so the second-pass metrics must agree
too).  The speedup floor is asserted on the warm regime and the whole
report is pinned to ``BENCH_engine.json`` at the repo root.
"""

from __future__ import annotations

import json
import os

from conftest import run_once

from repro.common.timing import Stopwatch
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.hierarchy.icp import IcpHierarchy
from repro.netmodel.model import AccessPoint
from repro.netmodel.testbed import TestbedCostModel
from repro.push.hierarchical import HierarchicalPushOnMiss
from repro.sim.engine import run_simulation
from repro.traces.synthetic import SyntheticTraceGenerator

ROUNDS = 3
#: Acceptance floors: fast engine at least this many times the reference
#: throughput in the warm (steady-state) regime, per architecture.  The
#: PR-6 kernels keep their measured 10x floor; the newer kernels start at
#: 5x (ICP's sibling scan, the directory's per-miss map traffic, and push
#: policy dispatch all stay per-request Python) -- re-pin upward once
#: measured headroom is established.
SPEEDUP_FLOORS = {
    "hierarchy": 10.0,
    "hints": 10.0,
    "icp": 5.0,
    "directory": 5.0,
    "hints-push": 5.0,
}
#: Cold (first-pass) floors.  Cold runs are compulsory-miss dominated,
#: and every miss pays the same shared-state mutation in both engines;
#: hints-push misses additionally run the full push-policy dispatch
#: (``on_remote_fetch``/``on_server_fetch`` + ``_apply_pushes``) per
#: request in both engines, so its cold headroom is structurally small
#: (measured ~1.8x).
COLD_FLOORS = {"hints-push": 1.5}
COLD_FLOOR_DEFAULT = 2.0
OUTPUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_engine.json")


def make_architectures(config):
    return {
        "hierarchy": lambda: DataHierarchy(config.topology, TestbedCostModel()),
        "hints": lambda: HintHierarchy(config.topology, TestbedCostModel()),
        "icp": lambda: IcpHierarchy(config.topology, TestbedCostModel()),
        "directory": lambda: CentralizedDirectoryArchitecture(
            config.topology, TestbedCostModel()
        ),
        "hints-push": lambda: HintHierarchy(
            config.topology,
            TestbedCostModel(),
            push_policy=HierarchicalPushOnMiss(config.topology, "push-1", seed=7),
        ),
    }


def bench_engines(config):
    profile = config.profile("dec")
    trace = SyntheticTraceGenerator(profile, seed=config.seed).generate()
    n = len(trace.requests)
    architectures = make_architectures(config)
    timings = {
        name: {"cold_ref": [], "cold_fast": [], "warm_ref": [], "warm_fast": []}
        for name in architectures
    }
    results = {}
    for _round in range(ROUNDS):
        for name, build in architectures.items():
            metrics = {}
            for engine, cold_key, warm_key in (
                ("reference", "cold_ref", "warm_ref"),
                ("fast", "cold_fast", "warm_fast"),
            ):
                architecture = build()
                with Stopwatch() as watch:
                    cold = run_simulation(trace, architecture, engine=engine)
                timings[name][cold_key].append(watch.elapsed)
                with Stopwatch() as watch:
                    warm = run_simulation(trace, architecture, engine=engine)
                timings[name][warm_key].append(watch.elapsed)
                metrics[engine] = (cold, warm)
            # Parity gate: byte-identical SimMetrics in both regimes.
            assert metrics["reference"][0] == metrics["fast"][0], name
            assert metrics["reference"][1] == metrics["fast"][1], name
            warm_metrics = metrics["fast"][1]
            results[name] = {
                "measured_requests": metrics["fast"][0].measured_requests,
                "warm_l1_fraction": round(
                    warm_metrics.requests_by_point[AccessPoint.L1]
                    / max(1, warm_metrics.measured_requests),
                    4,
                ),
            }
    report = {
        "requests": n,
        "rounds": ROUNDS,
        "scale": config.trace_scale,
        "speedup_floors": SPEEDUP_FLOORS,
        "cold_floors": {
            name: COLD_FLOORS.get(name, COLD_FLOOR_DEFAULT) for name in timings
        },
        "architectures": {},
    }
    for name, stage in timings.items():
        cold_ref = min(stage["cold_ref"])
        cold_fast = min(stage["cold_fast"])
        warm_ref = min(stage["warm_ref"])
        warm_fast = min(stage["warm_fast"])
        report["architectures"][name] = {
            **results[name],
            "reference_rps": round(n / cold_ref),
            "fast_rps": round(n / cold_fast),
            "speedup": round(cold_ref / cold_fast, 2),
            "warm_reference_rps": round(n / warm_ref),
            "warm_fast_rps": round(n / warm_fast),
            "warm_speedup": round(warm_ref / warm_fast, 2),
        }
    return report


def test_bench_fastpath(benchmark, bench_config):
    report = run_once(benchmark, bench_engines, bench_config)
    with open(OUTPUT, "w", encoding="utf-8") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")
    print("\n" + json.dumps(report, indent=2, sort_keys=True))
    for name, row in report["architectures"].items():
        # Cold runs are shared-state-bound; still require a real win.
        assert row["speedup"] >= COLD_FLOORS.get(name, COLD_FLOOR_DEFAULT), (name, row)
        # The acceptance floor holds in the steady-state regime.
        assert row["warm_speedup"] >= SPEEDUP_FLOORS[name], (name, row)
