"""Bench: the model-vs-mechanism cross-validation experiment."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import message_level


def test_bench_message_level(benchmark, bench_config):
    result = run_once(benchmark, message_level.run, bench_config)
    print("\n" + result.render())

    rows = {row["system"]: row for row in result.rows}
    hierarchy = rows["hierarchy (baseline)"]["mean_response_ms"]
    modeled = rows["hints, modeled (instant)"]["mean_response_ms"]
    mechanism = rows["hints, message-level"]["mean_response_ms"]

    # The real wire mechanism validates Figure 8's modeling: within 15% of
    # the instant-propagation model...
    assert abs(mechanism - modeled) / modeled < 0.15
    # ...and still roughly 2x ahead of the traditional hierarchy.
    assert hierarchy / mechanism > 1.5
    # Its staleness is real: emergent false negatives, not injected ones.
    assert rows["hints, message-level"]["false_negatives"] > 0
