"""Bench: regenerate Figure 6 (hit rate vs hint propagation delay)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure6


def test_bench_figure6(benchmark, bench_config):
    result = run_once(benchmark, figure6.run, bench_config)
    print("\n" + result.render())

    by_delay = {row["delay_minutes"]: row for row in result.rows}
    instant = by_delay[0.0]["hit_ratio"]
    # Minutes of delay are tolerable (the paper's claim) ...
    assert by_delay[5.0]["hit_ratio"] >= instant - 0.02
    # ... but long delays cost real hits.
    assert by_delay[1000.0]["hit_ratio"] < instant
    # Staleness shows up as hint errors.
    assert by_delay[1000.0]["false_negatives"] > by_delay[0.0]["false_negatives"]
