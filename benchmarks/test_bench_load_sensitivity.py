"""Bench: the load-sensitivity experiment (the 2.1.1 hypothesis)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import load_sensitivity


def test_bench_load_sensitivity(benchmark, bench_config):
    result = run_once(benchmark, load_sensitivity.run, bench_config)
    print("\n" + result.render())

    speedups = [row["speedup"] for row in result.rows]
    # The hypothesis: busy caches widen the hint architecture's advantage.
    assert all(b >= a - 0.01 for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] > speedups[0] * 1.25
    # Near saturation the hierarchy's multi-hop paths are punished hard.
    assert result.rows[-1]["hierarchy_ms"] > 2 * result.rows[0]["hierarchy_ms"]
