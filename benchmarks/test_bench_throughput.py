"""Library performance microbenchmarks (not paper artifacts).

How fast is the reproduction itself?  These benches time the hot paths a
user pays for -- trace generation, per-request simulation throughput for
each architecture, warm trace-cache reload vs cold generation, and the
parallel experiment runner vs the sequential baseline -- so performance
regressions (and the runner's wins) are visible in benchmark history.
"""

from __future__ import annotations

import time

import pytest

from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.netmodel.testbed import TestbedCostModel
from repro.runner.parallel import run_experiments
from repro.runner.trace_cache import TraceCache
from repro.sim.engine import run_simulation
from repro.traces.profiles import DEC
from repro.traces.synthetic import SyntheticTraceGenerator


@pytest.fixture(scope="module")
def small_profile():
    return DEC.scaled(0.0005, min_clients=128)


@pytest.fixture(scope="module")
def small_trace(small_profile):
    return SyntheticTraceGenerator(small_profile, seed=1).generate()


def test_bench_trace_generation(benchmark, small_profile):
    trace = benchmark(
        lambda: SyntheticTraceGenerator(small_profile, seed=1).generate()
    )
    assert len(trace) == small_profile.n_requests
    rate = len(trace) / benchmark.stats["mean"]
    print(f"\ntrace generation: {rate:,.0f} requests/s")


@pytest.mark.parametrize(
    "architecture_factory",
    [DataHierarchy, CentralizedDirectoryArchitecture, HintHierarchy],
    ids=["hierarchy", "directory", "hints"],
)
def test_bench_simulation_throughput(benchmark, small_trace, architecture_factory):
    from repro.hierarchy.topology import HierarchyTopology

    topology = HierarchyTopology(clients_per_l1=2, l1_per_l2=8, n_l2=8)

    def run_once():
        return run_simulation(
            small_trace, architecture_factory(topology, TestbedCostModel())
        )

    metrics = benchmark(run_once)
    assert metrics.measured_requests > 0
    rate = len(small_trace) / benchmark.stats["mean"]
    print(f"\nsimulation: {rate:,.0f} requests/s")
    # Regression guard: the simulator must stay usable (>20k req/s here).
    assert rate > 20_000


def test_bench_trace_cache_warm_vs_cold(benchmark, small_profile, tmp_path):
    """Warm disk-cache reload vs cold generation for the same trace.

    Benchmarks the warm path (fresh memo each round, so every fetch
    deserializes from the .npz store) and compares it against one measured
    cold generation; the ratio is the per-trace win a warm ``--trace-cache``
    buys every later session.
    """
    store = tmp_path / "store"
    started = time.perf_counter()
    TraceCache(store).get(small_profile, 1)  # cold: generates + persists
    cold_s = time.perf_counter() - started

    def warm_reload():
        cache = TraceCache(store)  # empty memo: forces the disk layer
        trace = cache.get(small_profile, 1)
        assert cache.stats.disk_hits == 1
        assert cache.stats.generations == 0
        return trace

    trace = benchmark(warm_reload)
    assert len(trace) == small_profile.n_requests
    warm_s = benchmark.stats["mean"]
    print(
        f"\ntrace cache: cold generation {cold_s * 1000:.0f} ms, "
        f"warm reload {warm_s * 1000:.0f} ms "
        f"({cold_s / warm_s:.1f}x faster warm)"
    )


def test_bench_parallel_runner_speedup(benchmark, tmp_path):
    """Registry fan-out: sequential baseline vs the process-pool runner.

    Uses a cheap cross-section of the registry at bench scale.  The
    recorded benchmark is the parallel run (cold store); the sequential
    baseline is measured once alongside so the speedup lands in the bench
    log.  On multi-core hosts the ratio reflects real parallelism; on one
    core it reflects scheduling overhead only, so no floor is asserted.
    """
    from repro.sim.config import default_config

    names = ["table4", "figure3", "scaling"]
    config = default_config().with_scale(0.0005)

    started = time.perf_counter()
    sequential = run_experiments(names, config, jobs=1)
    sequential_s = time.perf_counter() - started

    def parallel_run():
        return run_experiments(
            names, config, jobs=4, trace_cache_dir=str(tmp_path / "store")
        )

    summary = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    parallel_s = benchmark.stats["mean"]
    for name in names:
        assert summary.results[name].rows == sequential.results[name].rows, name
    print(
        f"\nrunner: sequential {sequential_s:.2f}s, jobs=4 {parallel_s:.2f}s "
        f"({sequential_s / parallel_s:.2f}x)"
    )
