"""Library performance microbenchmarks (not paper artifacts).

How fast is the reproduction itself?  These benches time the hot paths a
user pays for -- trace generation and per-request simulation throughput
for each architecture -- so performance regressions in the library are
visible in benchmark history.
"""

from __future__ import annotations

import pytest

from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.netmodel.testbed import TestbedCostModel
from repro.sim.engine import run_simulation
from repro.traces.profiles import DEC
from repro.traces.synthetic import SyntheticTraceGenerator


@pytest.fixture(scope="module")
def small_profile():
    return DEC.scaled(0.0005, min_clients=128)


@pytest.fixture(scope="module")
def small_trace(small_profile):
    return SyntheticTraceGenerator(small_profile, seed=1).generate()


def test_bench_trace_generation(benchmark, small_profile):
    trace = benchmark(
        lambda: SyntheticTraceGenerator(small_profile, seed=1).generate()
    )
    assert len(trace) == small_profile.n_requests
    rate = len(trace) / benchmark.stats["mean"]
    print(f"\ntrace generation: {rate:,.0f} requests/s")


@pytest.mark.parametrize(
    "architecture_factory",
    [DataHierarchy, CentralizedDirectoryArchitecture, HintHierarchy],
    ids=["hierarchy", "directory", "hints"],
)
def test_bench_simulation_throughput(benchmark, small_trace, architecture_factory):
    from repro.hierarchy.topology import HierarchyTopology

    topology = HierarchyTopology(clients_per_l1=2, l1_per_l2=8, n_l2=8)

    def run_once():
        return run_simulation(
            small_trace, architecture_factory(topology, TestbedCostModel())
        )

    metrics = benchmark(run_once)
    assert metrics.measured_requests > 0
    rate = len(small_trace) / benchmark.stats["mean"]
    print(f"\nsimulation: {rate:,.0f} requests/s")
    # Regression guard: the simulator must stay usable (>20k req/s here).
    assert rate > 20_000
