"""Bench: regenerate Figure 10 (push-algorithm response times)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure10


def test_bench_figure10(benchmark, bench_config):
    result = run_once(benchmark, figure10.run, bench_config)
    print("\n" + result.render())

    for cost_model in ("testbed", "min", "max"):
        rows = {
            row["system"]: row
            for row in result.rows
            if row["cost_model"] == cost_model
        }
        hints = rows["hints"]["mean_response_ms"]
        ideal = rows["hints-ideal-push"]["mean_response_ms"]
        push1 = rows["hints+push-1"]["mean_response_ms"]
        update = rows["hints+update-push"]["mean_response_ms"]
        # Ideal push bounds every real algorithm (paper: 1.21-1.62x gain).
        assert ideal < min(hints, push1, update)
        assert 1.15 < hints / ideal < 3.0
        # Hierarchical push-1 gains real latency (paper: 1.12-1.25x).
        assert push1 < hints
        # Update push changes response time only marginally.
        assert abs(update - hints) / hints < 0.1
        # Every hint variant beats the data hierarchy.
        hierarchy = rows["hierarchy"]["mean_response_ms"]
        for name, row in rows.items():
            if name != "hierarchy":
                assert row["mean_response_ms"] < hierarchy, name
