"""Bench: regenerate Figure 1 (testbed access times vs object size)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure1


def test_bench_figure1(benchmark):
    result = run_once(benchmark, figure1.run)
    print("\n" + result.render())

    by_size = {row["size_kb"]: row for row in result.rows}
    eight = by_size[8]
    # Paper anchors: ~545 ms gap and ~2.5x at 8 KB for L3.
    gap = eight["hier_l3_ms"] - eight["direct_l3_ms"]
    assert 490 <= gap <= 600
    assert 2.3 <= eight["hier_l3_ms"] / eight["direct_l3_ms"] <= 2.7
    # Panel ordering holds at every size.
    for row in result.rows:
        assert row["hier_l1_ms"] < row["hier_l2_ms"] < row["hier_l3_ms"]
        assert row["direct_l3_ms"] < row["via_l1_l3_ms"] < row["hier_l3_ms"]
