"""Bench: sharded runner throughput, with a shard-count-invariance gate.

Times :func:`repro.runner.sharding.run_comparison_sharded` over the
standard four architectures at ``shards=4`` (inline ``jobs=1``, so the
numbers measure the sharded engine itself rather than process-pool
scheduling noise) and pins the report to ``BENCH_sharding.json`` at the
repo root.  Every timed run is invariance-gated: the ``shards=4``
metrics must equal a ``shards=1`` run of the same matrix byte for byte
-- the sharded runner's entire contract, enforced where throughput is
recorded.
"""

from __future__ import annotations

import json
import os

from conftest import run_once

from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.hierarchy.icp import IcpHierarchy
from repro.netmodel.testbed import TestbedCostModel
from repro.runner.sharding import run_comparison_sharded
from repro.runner.specs import ArchitectureSpec
from repro.traces.synthetic import SyntheticTraceGenerator

ROUNDS = 3
SHARDS = 4
#: Aggregate floor over the whole matrix (requests simulated per second
#: of comparison wall-clock, all four architectures).  The reference
#: loop sustains >20k req/s per architecture unsharded; splitting into
#: 16 partition sub-runs keeps per-request cost flat, so the matrix
#: floor is deliberately conservative.
TOTAL_RPS_FLOOR = 10_000
OUTPUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_sharding.json")

ARCHITECTURES = {
    "hierarchy": DataHierarchy,
    "icp": IcpHierarchy,
    "hints": HintHierarchy,
    "directory": CentralizedDirectoryArchitecture,
}


def bench_sharding(config):
    profile = config.profile("dec")
    n = len(SyntheticTraceGenerator(profile, seed=config.seed).generate().requests)
    specs = {
        name: [ArchitectureSpec(cls, (config.topology, TestbedCostModel()))]
        for name, cls in ARCHITECTURES.items()
    }
    timings = {name: [] for name in ARCHITECTURES}
    sharded = {}
    for _round in range(ROUNDS):
        for name, spec in specs.items():
            comparison = run_comparison_sharded(
                profile, config.seed, spec, shards=SHARDS
            )
            timings[name].append(comparison.wall_s)
            sharded[name] = comparison.results[name]
    # Invariance gate: byte-identical SimMetrics against shards=1.
    for name, spec in specs.items():
        single = run_comparison_sharded(profile, config.seed, spec, shards=1)
        assert single.results[name] == sharded[name], name

    report = {
        "requests": n,
        "rounds": ROUNDS,
        "scale": config.trace_scale,
        "shards": SHARDS,
        "virtual_partitions": 16,
        "rps_floor": TOTAL_RPS_FLOOR,
        "architectures": {},
    }
    best = {name: min(walls) for name, walls in timings.items()}
    for name, wall in best.items():
        report["architectures"][name] = {
            "measured_requests": sharded[name].measured_requests,
            "wall_s": round(wall, 4),
            "rps": round(n / wall),
        }
    report["total_rps"] = round(len(ARCHITECTURES) * n / sum(best.values()))
    return report


def test_bench_sharding(benchmark, bench_config):
    report = run_once(benchmark, bench_sharding, bench_config)
    with open(OUTPUT, "w", encoding="utf-8") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")
    print("\n" + json.dumps(report, indent=2, sort_keys=True))
    assert report["total_rps"] >= TOTAL_RPS_FLOOR, report["total_rps"]
