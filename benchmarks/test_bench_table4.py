"""Bench: regenerate Table 4 (trace characteristics)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import table4


def test_bench_table4(benchmark, bench_config):
    result = run_once(benchmark, table4.run, bench_config)
    print("\n" + result.render())

    assert [row["trace"] for row in result.rows] == ["dec", "berkeley", "prodigy"]
    for row in result.rows:
        # The calibration target: distinct/request ratio within 20% of the
        # published trace's.
        assert abs(row["distinct_ratio"] - row["paper_distinct_ratio"]) < 0.2 * row[
            "paper_distinct_ratio"
        ]
    days = {row["trace"]: row["days"] for row in result.rows}
    assert round(days["dec"]) == 21
    assert round(days["berkeley"]) == 19
    assert round(days["prodigy"]) == 3
