"""Bench: regenerate Figure 5 (hit rate vs hint-cache size)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure5


def test_bench_figure5(benchmark, bench_config):
    result = run_once(benchmark, figure5.run, bench_config)
    print("\n" + result.render())

    ratios = [row["hit_ratio"] for row in result.rows]
    # The Figure 5 sigmoid: tiny hint caches track little beyond local
    # contents; a full-index-sized cache matches the unbounded directory.
    assert ratios[0] < ratios[-1] - 0.2
    assert all(b >= a - 0.02 for a, b in zip(ratios, ratios[1:]))
    full_index = result.rows[-3]  # fraction 1.0
    unbounded = result.rows[-1]
    assert abs(full_index["hit_ratio"] - unbounded["hit_ratio"]) < 0.03
    assert unbounded["false_negatives"] == 0
