"""Bench: the ablation studies (ICP baseline, fan-out, tree branching)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import ablations


def test_bench_ablation_icp(benchmark, bench_config):
    result = run_once(benchmark, ablations.run_icp, bench_config)
    print("\n" + result.render())

    rows = {row["architecture"]: row for row in result.rows}
    # Sibling queries help over the plain hierarchy only via sibling hits,
    # but hints dominate both: they reach every cache and never slow a miss.
    assert rows["hints"]["mean_response_ms"] < rows["hierarchy"]["mean_response_ms"]
    assert rows["hints"]["mean_response_ms"] < rows["icp"]["mean_response_ms"]
    assert 0.0 <= rows["icp"]["sibling_hit_rate"] <= 1.0


def test_bench_ablation_fanout(benchmark, bench_config):
    result = run_once(benchmark, ablations.run_fanout, bench_config)
    print("\n" + result.render())

    assert len(result.rows) >= 3
    for row in result.rows:
        assert row["speedup"] > 1.2, row


def test_bench_ablation_branching(benchmark, bench_config):
    result = run_once(benchmark, ablations.run_branching, bench_config)
    print("\n" + result.render())

    for row in result.rows:
        # Any filtering hierarchy beats the centralized strawman.
        assert row["filter_ratio"] >= 1.0
    # The flattest tree (branching = n_l1) filters the least at the root.
    flattest = result.rows[-1]
    deepest = result.rows[0]
    assert deepest["filter_ratio"] >= flattest["filter_ratio"]
