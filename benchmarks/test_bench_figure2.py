"""Bench: regenerate Figure 2 (miss-class breakdown vs cache size)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure2


def test_bench_figure2(benchmark, bench_config):
    result = run_once(benchmark, figure2.run, bench_config)
    print("\n" + result.render())

    for trace in ("dec", "berkeley", "prodigy"):
        rows = [row for row in result.rows if row["trace"] == trace]
        totals = [row["total_miss"] for row in rows]
        # Bigger caches never miss more.
        assert all(a >= b - 1e-9 for a, b in zip(totals, totals[1:]))
        infinite = rows[-1]
        # Capacity misses vanish; compulsory dominates the residual.
        assert infinite["capacity"] == 0.0
        assert infinite["compulsory"] > infinite["communication"]

    # Berkeley and Prodigy show markedly more uncachable traffic than DEC.
    uncachable = {
        row["trace"]: row["uncachable"]
        for row in result.rows
        if row["size_fraction"] == "inf"
    }
    assert uncachable["berkeley"] > 2 * uncachable["dec"]
    assert uncachable["prodigy"] > 2 * uncachable["dec"]
