"""Bench: regenerate Table 5 (root update load) and the wire arithmetic."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import table5
from repro.hints.wire import UPDATE_RECORD_BYTES


def test_bench_table5(benchmark, bench_config):
    result = run_once(benchmark, table5.run, bench_config)
    print("\n" + result.render())

    central, hierarchy = result.rows
    # The filtering hierarchy's root hears strictly less than the
    # centralized strawman (paper: 1.9 vs 5.7 updates/s).
    assert hierarchy["root_updates"] < central["root_updates"]
    # Section 3.2's wire arithmetic: 20 bytes per update.
    assert UPDATE_RECORD_BYTES == 20
    for row in result.rows:
        assert row["bandwidth_bytes_per_s"] == row["updates_per_s"] * 20
