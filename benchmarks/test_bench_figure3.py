"""Bench: regenerate Figure 3 (hit ratios by hierarchy level)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure3


def test_bench_figure3(benchmark, bench_config):
    result = run_once(benchmark, figure3.run, bench_config)
    print("\n" + result.render())

    for row in result.rows:
        # Sharing strictly increases achievable hit rates.
        assert row["l1_hit_ratio"] < row["l2_hit_ratio"] < row["l3_hit_ratio"]
        assert row["l1_byte_hit"] <= row["l2_byte_hit"] <= row["l3_byte_hit"]
        # System-wide hit rates land in the paper's broad band (~60-85%).
        assert 0.5 < row["l3_hit_ratio"] < 0.95
