"""Shared configuration for the benchmark harness.

Each ``test_bench_*`` module regenerates one of the paper's tables or
figures, prints it (run pytest with ``-s`` to see the rendered tables),
asserts the paper's *shape* claims, and records the wall-clock cost via
pytest-benchmark.  Simulation benches run once per session
(``benchmark.pedantic`` with one round) because a full regeneration is the
unit of interest, not a microsecond-scale kernel.

The benchmark scale is modestly smaller than the default experiment scale
so the whole harness completes in minutes; EXPERIMENTS.md records a
full-default-scale run.
"""

from __future__ import annotations

import pytest

from repro.sim.config import ExperimentConfig, default_config


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The configuration every benchmark runs at."""
    return default_config().with_scale(0.002)


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
