"""Bench: queueing validation (emergent vs analytic load sensitivity)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import queueing_validation


def test_bench_queueing_validation(benchmark, bench_config):
    result = run_once(benchmark, queueing_validation.run, bench_config)
    print("\n" + result.render())

    for column in ("emergent_speedup", "analytic_speedup"):
        values = [row[column] for row in result.rows]
        assert all(v > 1.0 for v in values), column
        assert values[-1] > values[0], column
    for row in result.rows:
        assert row["hierarchy_queue_wait_ms"] > row["hints_queue_wait_ms"]
