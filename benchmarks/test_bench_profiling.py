"""Bench: span-profiler cost -- detached (the default) and attached.

Three claims are pinned:

* **Detached profiling is free.** With no profiler attached every
  instrumented site pays one module-pointer check per *run* (never per
  request); an uninstrumented twin of the engine loop (no telemetry,
  audit, or profiling branches at all) must run within a 3% budget of
  the real ``run_simulation`` with nothing attached.  This is the
  headline ``BENCH_HISTORY.jsonl`` tracks and the floor
  ``python -m repro.obs.perf`` re-checks on the committed file.
* **Attached profiling is invisible to results.** Running under
  ``profiling.attached(SpanProfiler())`` must not change a single
  metric; its wall-clock overhead is recorded (not bounded -- span count
  is workload-dependent) in ``BENCH_profiling.json`` at the repo root.
* **The span forest reconciles.** Summing self time over the attached
  run's whole table reproduces the root durations exactly -- the same
  accounting identity the ``profile`` verb's footer prints.

Timings are interleaved min-of-N so one cache-cold or preempted round
cannot skew either side.
"""

from __future__ import annotations

import json
import os

from conftest import run_once
from test_bench_telemetry import make_architectures, run_uninstrumented

from repro.common.timing import Stopwatch
from repro.obs import profiling
from repro.obs.perfhistory import PROFILING_DETACHED_BUDGET_PCT
from repro.sim.engine import run_simulation
from repro.traces.synthetic import SyntheticTraceGenerator

ROUNDS = 3
OUTPUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_profiling.json")


def bench_stages(config):
    profile = config.profile("dec")
    trace = SyntheticTraceGenerator(profile, seed=config.seed).generate()
    architectures = make_architectures(config)
    timings = {
        name: {"uninstrumented": [], "detached": [], "attached": []}
        for name in architectures
    }
    results = {}
    for _round in range(ROUNDS):
        for name, build in architectures.items():
            assert profiling.active() is None
            with Stopwatch() as watch:
                baseline = run_uninstrumented(trace, build())
            timings[name]["uninstrumented"].append(watch.elapsed)
            with Stopwatch() as watch:
                detached = run_simulation(trace, build())
            timings[name]["detached"].append(watch.elapsed)
            profiler = profiling.SpanProfiler()
            with profiling.attached(profiler):
                with Stopwatch() as watch:
                    attached = run_simulation(trace, build())
            profiler.close()
            timings[name]["attached"].append(watch.elapsed)
            assert detached.summary() == baseline.summary(), name
            assert detached.summary() == attached.summary(), name
            assert detached.requests_by_point == attached.requests_by_point, name
            spans = sum(1 for root in profiler.roots for _ in root.walk())
            assert spans > 0, name  # the profiler saw the run
            # Accounting identity: self time sums back to root duration.
            rows = profiling.aggregate_spans(profiler.roots)
            accounted = sum(row["self_s"] for row in rows)
            total = sum(root.duration_s for root in profiler.roots)
            assert abs(accounted - total) < 1e-9, name
            results[name] = {
                "measured_requests": detached.measured_requests,
                "spans": spans,
            }
    report = {
        "scale": config.trace_scale,
        "rounds": ROUNDS,
        "max_detached_overhead_pct": PROFILING_DETACHED_BUDGET_PCT,
        "architectures": {},
    }
    total_uninstrumented = total_detached = total_attached = 0.0
    for name, stage in timings.items():
        uninstrumented = min(stage["uninstrumented"])
        detached = min(stage["detached"])
        attached = min(stage["attached"])
        total_uninstrumented += uninstrumented
        total_detached += detached
        total_attached += attached
        report["architectures"][name] = {
            **results[name],
            "uninstrumented_s": round(uninstrumented, 6),
            "detached_s": round(detached, 6),
            "attached_s": round(attached, 6),
            "detached_overhead_pct": round(
                100.0 * (detached / uninstrumented - 1.0), 3
            ),
            "attached_overhead_pct": round(100.0 * (attached / detached - 1.0), 3),
        }
    report["uninstrumented_s"] = round(total_uninstrumented, 6)
    report["detached_s"] = round(total_detached, 6)
    report["attached_s"] = round(total_attached, 6)
    report["detached_overhead_pct"] = round(
        100.0 * (total_detached / total_uninstrumented - 1.0), 3
    )
    report["attached_overhead_pct"] = round(
        100.0 * (total_attached / total_detached - 1.0), 3
    )
    return report


def test_bench_profiling(benchmark, bench_config):
    report = run_once(benchmark, bench_stages, bench_config)
    with open(OUTPUT, "w", encoding="utf-8") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")
    print("\n" + json.dumps(report, indent=2, sort_keys=True))
    # The acceptance budget: profiling-capable-but-detached within 3% of
    # the uninstrumented twin (aggregate over all four architectures, so
    # per-architecture timer noise averages out).
    assert (
        report["detached_overhead_pct"] <= PROFILING_DETACHED_BUDGET_PCT
    ), report["detached_overhead_pct"]
