"""Bench: regenerate Figure 8 (the headline response-time comparison)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure8


def test_bench_figure8(benchmark, bench_config):
    result = run_once(benchmark, figure8.run, bench_config)
    print("\n" + result.render())

    for row in result.rows:
        # The paper's central result, for every trace, cost model, and
        # disk configuration: hints < directory < hierarchy.
        assert row["hints_ms"] < row["directory_ms"] < row["hierarchy_ms"], row
        # Speedups inside a sane band around the paper's 1.28-2.79.
        assert 1.1 < row["speedup_hints"] < 3.5, row
