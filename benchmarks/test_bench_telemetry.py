"""Bench: telemetry and audit cost -- disabled (the default) and enabled.

Three claims are pinned:

* **Disabled instrumentation is free.** With neither a registry nor
  audit hooks attached the engine pays one ``is not None`` check per
  site (telemetry *and* audit) and the caches bump plain int counters;
  an uninstrumented twin of the engine loop (no telemetry or audit
  branches at all) must run within a 2% budget of the real
  ``run_simulation`` called with ``telemetry=None, audit=None``.
* **Enabled telemetry is cheap and invisible.** Attaching a
  :class:`~repro.obs.telemetry.RunTelemetry` must not change a single
  metric, and its wall-clock overhead is recorded (not bounded -- binning
  cost is workload-dependent) in ``BENCH_telemetry.json`` at the repo
  root, the first point of the bench trajectory.
* **Enabled audit is invisible too.** Attaching
  :class:`~repro.audit.hooks.AuditHooks` (strided scans) must not change
  a single metric either; its overhead is likewise recorded, not
  bounded -- full-state scans are the price of re-proving invariants.

Timings are interleaved min-of-N so one cache-cold or preempted round
cannot skew either side.
"""

from __future__ import annotations

import json
import os

from conftest import run_once

from repro.audit.hooks import AuditHooks
from repro.common.timing import Stopwatch
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.hierarchy.icp import IcpHierarchy
from repro.netmodel.testbed import TestbedCostModel
from repro.obs.telemetry import RunTelemetry
from repro.sim.engine import run_simulation
from repro.sim.metrics import SimMetrics
from repro.traces.synthetic import SyntheticTraceGenerator

ROUNDS = 3
OUTPUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_telemetry.json")


def make_architectures(config):
    return {
        "hierarchy": lambda: DataHierarchy(config.topology, TestbedCostModel()),
        "icp": lambda: IcpHierarchy(config.topology, TestbedCostModel()),
        "hints": lambda: HintHierarchy(config.topology, TestbedCostModel()),
        "directory": lambda: CentralizedDirectoryArchitecture(
            config.topology, TestbedCostModel()
        ),
    }


def run_uninstrumented(trace, architecture) -> SimMetrics:
    """The engine loop with the telemetry branches deleted.

    A faithful twin of :func:`repro.sim.engine.run_simulation` for the
    clean default path (no faults, no journeys, uncachable excluded) --
    the counterfactual that makes "disabled telemetry is free" a
    measurable claim instead of an assertion.
    """
    metrics = SimMetrics(
        architecture=architecture.name, cost_model=architecture.cost_model.name
    )
    boundary = trace.warmup
    processed = 0
    for request in trace.requests:
        if request.error:
            metrics.skipped_error += 1
            continue
        if not request.cacheable:
            metrics.skipped_uncachable += 1
            continue
        result = architecture.process(request)
        processed += 1
        if request.time < boundary:
            metrics.warmup_requests += 1
            continue
        metrics.record(result, request.size)
    architecture.processed_requests += processed
    metrics.validate()
    return metrics


def bench_stages(config):
    profile = config.profile("dec")
    trace = SyntheticTraceGenerator(profile, seed=config.seed).generate()
    architectures = make_architectures(config)
    timings = {
        name: {"uninstrumented": [], "off": [], "on": [], "audit": []}
        for name in architectures
    }
    results = {}
    for _round in range(ROUNDS):
        for name, build in architectures.items():
            with Stopwatch() as watch:
                baseline = run_uninstrumented(trace, build())
            timings[name]["uninstrumented"].append(watch.elapsed)
            with Stopwatch() as watch:
                off = run_simulation(trace, build())
            timings[name]["off"].append(watch.elapsed)
            telemetry = RunTelemetry()
            with Stopwatch() as watch:
                on = run_simulation(trace, build(), telemetry=telemetry)
            timings[name]["on"].append(watch.elapsed)
            hooks = AuditHooks(check_every=512)
            with Stopwatch() as watch:
                audited = run_simulation(trace, build(), audit=hooks)
            timings[name]["audit"].append(watch.elapsed)
            assert off.summary() == baseline.summary(), name
            assert off.summary() == on.summary(), name
            assert off.requests_by_point == on.requests_by_point, name
            assert off.summary() == audited.summary(), name
            assert off.requests_by_point == audited.requests_by_point, name
            assert sum(hooks.counts.values()) > 0, name  # the audit ran
            results[name] = {
                "measured_requests": off.measured_requests,
                "timeline_bins": len(telemetry.rows),
            }
    report = {"scale": config.trace_scale, "rounds": ROUNDS, "architectures": {}}
    total_uninstrumented = total_off = total_on = total_audit = 0.0
    for name, stage in timings.items():
        uninstrumented = min(stage["uninstrumented"])
        off = min(stage["off"])
        on = min(stage["on"])
        audit = min(stage["audit"])
        total_uninstrumented += uninstrumented
        total_off += off
        total_on += on
        total_audit += audit
        report["architectures"][name] = {
            **results[name],
            "uninstrumented_s": round(uninstrumented, 6),
            "off_s": round(off, 6),
            "on_s": round(on, 6),
            "audit_s": round(audit, 6),
            "disabled_overhead_pct": round(100.0 * (off / uninstrumented - 1.0), 3),
            "enabled_overhead_pct": round(100.0 * (on / off - 1.0), 3),
            "audit_overhead_pct": round(100.0 * (audit / off - 1.0), 3),
        }
    report["uninstrumented_s"] = round(total_uninstrumented, 6)
    report["off_s"] = round(total_off, 6)
    report["on_s"] = round(total_on, 6)
    report["audit_s"] = round(total_audit, 6)
    report["disabled_overhead_pct"] = round(
        100.0 * (total_off / total_uninstrumented - 1.0), 3
    )
    report["enabled_overhead_pct"] = round(100.0 * (total_on / total_off - 1.0), 3)
    report["audit_overhead_pct"] = round(100.0 * (total_audit / total_off - 1.0), 3)
    return report


def test_bench_telemetry(benchmark, bench_config):
    report = run_once(benchmark, bench_stages, bench_config)
    with open(OUTPUT, "w", encoding="utf-8") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")
    print("\n" + json.dumps(report, indent=2, sort_keys=True))
    # The acceptance budget: instrumented-but-disabled within 2% of the
    # uninstrumented twin (aggregate over all four architectures, so
    # per-architecture timer noise averages out).  The twin has neither
    # telemetry nor audit branches, so this budget covers the detached
    # cost of both observers.
    assert report["disabled_overhead_pct"] <= 2.0, report["disabled_overhead_pct"]
