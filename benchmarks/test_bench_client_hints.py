"""Bench: regenerate the section 3.3 proxy-vs-client hint comparison."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import client_hints


def test_bench_client_hints(benchmark, bench_config):
    result = run_once(benchmark, client_hints.run, bench_config)
    print("\n" + result.render())

    rows = result.rows
    # Complete client hint caches beat the proxy configuration (the paper
    # measured ~20% at best; we require a measurable win).
    complete = rows[0]
    assert complete["client_fn_rate"] == 0.0
    assert complete["improvement"] > 1.02
    # The advantage erodes monotonically and eventually flips.
    improvements = [row["improvement"] for row in rows]
    assert all(b <= a + 0.02 for a, b in zip(improvements, improvements[1:]))
    assert not rows[-1]["client_superior"]
    # The crossover falls strictly inside the swept range.
    flips = [row["client_fn_rate"] for row in rows if not row["client_superior"]]
    assert flips and 0.0 < flips[0] <= 1.0
