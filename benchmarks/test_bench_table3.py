"""Bench: regenerate Table 3 (Rousskov-derived Squid access times)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import table3


def test_bench_table3(benchmark):
    result = run_once(benchmark, table3.run)
    print("\n" + result.render())

    by_level = {row["level"]: row for row in result.rows}
    # Every derived total matches the published table exactly.
    assert (by_level["Leaf"]["hier_min"], by_level["Leaf"]["hier_max"]) == (163, 352)
    assert (by_level["Intermediate"]["hier_min"], by_level["Intermediate"]["hier_max"]) == (271, 2767)
    assert (by_level["Root"]["hier_min"], by_level["Root"]["hier_max"]) == (531, 4667)
    assert (by_level["Miss"]["hier_min"], by_level["Miss"]["hier_max"]) == (981, 7217)
    assert (by_level["Root"]["direct_min"], by_level["Root"]["direct_max"]) == (320, 2850)
    assert (by_level["Root"]["via_l1_min"], by_level["Root"]["via_l1_max"]) == (411, 3067)
    assert (by_level["Miss"]["via_l1_min"], by_level["Miss"]["via_l1_max"]) == (641, 3417)
