#!/usr/bin/env python
"""Failure drill: what happens when a metadata node dies mid-flight?

An operations-runbook walk through the hint fabric's failure story, driven
by the same :mod:`repro.faults` vocabulary trace simulations use -- the
crash is a scheduled :class:`~repro.faults.events.NodeCrash` in a
:class:`~repro.faults.events.FaultPlan`, replayed against the live cluster
by :class:`~repro.faults.cluster_driver.ClusterFaultDriver`:

1. A 64-proxy hint cluster is humming: updates batch and flow, every hint
   cache converges.
2. An interior metadata node crashes (per the fault plan).  Its subtree
   partitions -- updates from eight proxies silently stop reaching the
   rest of the system, and hint caches go stale (requests fall back to
   origin servers: slower, never wrong; the "do not slow down misses"
   rule degrades gracefully).
3. The Plaxton layer hands down a reconfigured tree over the survivors
   (the paper's "automatic reconfiguration" property), the cluster
   re-advertises local holdings, and coverage returns to 100%.

Run:  python examples/failure_drill.py
"""

from __future__ import annotations

import numpy as np

from repro.common.ids import object_id_from_url
from repro.faults import FaultPlan, NodeCrash
from repro.faults.cluster_driver import ClusterFaultDriver
from repro.hints.cluster import HintCluster
from repro.hints.propagation import HintPropagationTree

#: The interior metadata node the drill kills (it fronts proxies 0-7).
CRASHED_NODE = 64
CRASH_TIME_S = 600.0


def fresh_cluster() -> tuple[HintCluster, list[int | None]]:
    tree = HintPropagationTree.balanced(branching=8, leaves=64)
    parents = tree.parent_vector()
    return HintCluster(parents=parents, link_latency_s=0.1, seed=11), parents


def coverage_report(cluster: HintCluster, hashes: list[int], label: str) -> None:
    mean = np.mean([cluster.coverage(h) for h in hashes])
    print(f"  {label}: mean hint coverage {mean:.1%}, "
          f"batches lost so far {cluster.batches_lost_to_failures}")


def main() -> None:
    cluster, parents = fresh_cluster()
    n_leaves = 64
    rng = np.random.default_rng(5)

    plan = FaultPlan(
        events=(NodeCrash(time=CRASH_TIME_S, kind="meta", node=CRASHED_NODE),)
    )
    driver = ClusterFaultDriver(cluster, plan)

    print("Phase 1: steady state")
    warm = [object_id_from_url(f"http://warm-{i}.example.com/") for i in range(20)]
    for i, url_hash in enumerate(warm):
        cluster.local_inform(int(rng.integers(0, n_leaves)), url_hash, now=float(i))
    driver.run_until(CRASH_TIME_S)
    coverage_report(cluster, warm, "after convergence")

    print(f"\nPhase 2: interior metadata node {CRASHED_NODE} crashes "
          "(it fronts proxies 0-7's updates)")
    fresh = [object_id_from_url(f"http://fresh-{i}.example.com/") for i in range(20)]
    for i, url_hash in enumerate(fresh):
        cluster.local_inform(int(rng.integers(0, 8)), url_hash, now=CRASH_TIME_S + i)
    driver.run_until(1200.0)
    coverage_report(cluster, fresh, "post-crash (updates from the cut subtree)")
    found = cluster.find_nearest(60, fresh[0], now=1200.0)
    print(f"  proxy 60 looking for a cut-subtree object: "
          f"{'found' if found else 'hint miss -> origin server (graceful)'}")

    print("\nPhase 3: Plaxton reconfiguration re-homes the orphans")
    # Survivors re-parent: proxies 0-7 move under interior node 65.
    new_parents = list(parents)
    for leaf in range(8):
        new_parents[leaf] = 65
    cluster.reconfigure(new_parents, now=1200.0)
    driver.run_until(2400.0)
    coverage_report(cluster, fresh, "after reconfiguration + re-advertising")
    found = cluster.find_nearest(60, fresh[0], now=2400.0)
    print(f"  proxy 60 retries: {'found at proxy ' + str(found.node) if found else 'still missing'}")
    print("\nTotal update bandwidth spent:",
          f"{sum(cluster.bytes_sent)} bytes across {cluster.batches_sent} batches")


if __name__ == "__main__":
    main()
