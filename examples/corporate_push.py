#!/usr/bin/env python
"""Corporate proxy scenario: is push caching worth the bandwidth?

Models a DEC-like corporate population (the paper's first trace) running
the hint architecture with space-constrained proxy disks, then turns on
each push algorithm from section 4 and reports the paper's two figures of
merit side by side:

* response-time speedup over the no-push hint system (Figure 10), and
* push efficiency plus bandwidth inflation (Figure 11).

The punchline matches the paper: hierarchical push trades bandwidth for
latency; update push is highly targeted but barely moves response time;
the ideal-push bound shows how much headroom remains.

Run:  python examples/corporate_push.py
"""

from __future__ import annotations

from repro import (
    DEC,
    DataHierarchy,
    HierarchicalPushOnMiss,
    HierarchyTopology,
    HintHierarchy,
    TestbedCostModel,
    UpdatePush,
    generate_trace,
    run_simulation,
)
from repro.common.units import MB
from repro.reporting.tables import format_table


def main() -> None:
    print("Generating a scaled DEC-profile trace...")
    trace = generate_trace(DEC.scaled(0.002, min_clients=256), seed=42)
    topology = HierarchyTopology(clients_per_l1=4, l1_per_l2=8, n_l2=8)
    cost = TestbedCostModel()
    data_bytes = 12 * MB        # scaled stand-in for the paper's 5 GB
    hint_data = int(10.8 * MB)  # 90% data ...
    hint_store = int(1.2 * MB)  # ... 10% hints

    print("Simulating the baselines and each push algorithm...\n")
    hierarchy = DataHierarchy(
        topology, cost, l1_bytes=data_bytes, l2_bytes=data_bytes, l3_bytes=data_bytes
    )
    baseline = run_simulation(trace, hierarchy)

    systems = [("(no push)", None)]
    systems.append(("update push", UpdatePush()))
    for mode in ("push-1", "push-half", "push-all"):
        systems.append((mode, HierarchicalPushOnMiss(topology, mode, seed=42)))

    rows = []
    no_push_ms = None
    for label, policy in systems:
        arch = HintHierarchy(
            topology, cost,
            l1_bytes=hint_data, hint_capacity_bytes=hint_store,
            push_policy=policy,
        )
        metrics = run_simulation(trace, arch)
        if no_push_ms is None:
            no_push_ms = metrics.mean_response_ms
        stats = arch.push_stats
        demand_bw = stats.demand_bandwidth_bytes_per_s()
        total_bw = demand_bw + stats.push_bandwidth_bytes_per_s()
        rows.append(
            {
                "system": label,
                "mean_ms": metrics.mean_response_ms,
                "speedup_vs_no_push": no_push_ms / metrics.mean_response_ms,
                "efficiency": stats.efficiency,
                "bw_inflation": total_bw / demand_bw if demand_bw else 1.0,
            }
        )

    ideal = HintHierarchy(
        topology, cost, l1_bytes=data_bytes, charge_remote_as_l1=True
    )
    ideal_metrics = run_simulation(trace, ideal)
    rows.append(
        {
            "system": "ideal push (bound)",
            "mean_ms": ideal_metrics.mean_response_ms,
            "speedup_vs_no_push": no_push_ms / ideal_metrics.mean_response_ms,
            "efficiency": "",
            "bw_inflation": "",
        }
    )

    print(format_table(rows, title="Push caching on a corporate proxy (DEC profile)"))
    print(
        f"\nFor reference, the no-push data hierarchy averaged "
        f"{baseline.mean_response_ms:,.0f} ms.\n"
        "Reading the table: efficiency is the fraction of pushed bytes a\n"
        "client later read; bw_inflation is total traffic relative to\n"
        "demand-only.  Aggressive pushing buys latency with bandwidth."
    )


if __name__ == "__main__":
    main()
