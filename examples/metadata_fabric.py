#!/usr/bin/env python
"""The self-configuring metadata fabric, end to end.

Walks the machinery of section 3 at human scale:

1. Sixteen proxies in four cities get MD5 node IDs and build the Plaxton
   hint-distribution fabric automatically (no manual parent/child config).
2. A hint update for a hot URL is routed from every proxy; all routes
   converge on the same metadata root, and low tree levels use nearby
   parents (the locality property).
3. A proxy crashes; the fabric reconfigures and we measure how little of
   the configuration was disturbed.
4. The same update stream flows through the filtering hierarchy and a
   strawman centralized directory, showing the root-load reduction of
   Table 5 and the 20-byte wire cost of section 3.2.

Run:  python examples/metadata_fabric.py
"""

from __future__ import annotations

import numpy as np

from repro.common.ids import node_id_from_name, object_id_from_url
from repro.hints.propagation import CentralizedDirectoryProtocol, HintPropagationTree
from repro.hints.wire import UPDATE_RECORD_BYTES
from repro.netmodel.topology import GeographicTopology
from repro.plaxton.membership import remove_node_report
from repro.plaxton.tree import PlaxtonTree

N_PROXIES = 16


def build_fabric() -> PlaxtonTree:
    rng = np.random.default_rng(2024)
    topology = GeographicTopology(N_PROXIES, n_clusters=4, rng=rng)
    node_ids = [node_id_from_name(f"proxy-{i}.isp.example.net") for i in range(N_PROXIES)]
    return PlaxtonTree(node_ids, topology)


def show_routing(tree: PlaxtonTree) -> None:
    url = "http://news.example.com/today.html"
    url_hash = object_id_from_url(url)
    root = tree.root_for(url_hash)
    print(f"Object root for {url}: proxy {root}")
    for start in (0, 5, 11):
        path = tree.route_path(start, url_hash)
        print(f"  update from proxy {start:2d} routes {' -> '.join(map(str, path))}")
    distances = tree.parent_distance_by_level()
    rendered = ", ".join(f"L{i}: {d:.1f}" for i, d in enumerate(distances) if d > 0)
    print(f"Mean parent distance by level (locality): {rendered}\n")


def crash_a_proxy(tree: PlaxtonTree) -> None:
    victim = 7
    object_ids = [object_id_from_url(f"http://site-{i}.example.com/") for i in range(200)]
    report = remove_node_report(tree, node=victim, object_ids=object_ids)
    print(f"Proxy {victim} crashed and the fabric reconfigured itself:")
    print(f"  parent-table entries changed: {report.disturbance:.1%}")
    print(f"  changes beyond the forced ones: {report.gratuitous_disturbance:.1%}")
    print(f"  object roots moved: {report.roots_moved}/{report.objects_sampled}\n")


def show_filtering() -> None:
    rng = np.random.default_rng(7)
    tree = HintPropagationTree.balanced(branching=4, leaves=N_PROXIES)
    central = CentralizedDirectoryProtocol()
    # A synthetic store/evict stream: popular objects get cached at many
    # proxies; the hierarchy should filter the duplicates.
    events = 0
    for obj in range(300):
        copies = min(int(rng.zipf(1.3)), N_PROXIES)
        leaves = rng.choice(N_PROXIES, size=copies, replace=False)
        for leaf in leaves:
            tree.inform(int(leaf), obj)
            central.inform(int(leaf), obj)
            events += 1
    print("Hint-update filtering (Table 5's mechanism):")
    print(f"  cache events:                   {events}")
    print(f"  updates at centralized root:    {central.messages_received}")
    print(f"  updates at hierarchy root:      {tree.root_messages}")
    reduction = central.messages_received / tree.root_messages
    print(f"  root-load reduction:            {reduction:.1f}x")
    print(
        f"  wire cost at the filtered root: "
        f"{tree.root_messages * UPDATE_RECORD_BYTES} bytes "
        f"({UPDATE_RECORD_BYTES} B/update)"
    )


def main() -> None:
    tree = build_fabric()
    print(f"Built a Plaxton fabric over {len(tree)} proxies in 4 cities.\n")
    show_routing(tree)
    crash_a_proxy(tree)
    show_filtering()


if __name__ == "__main__":
    main()
