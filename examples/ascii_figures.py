#!/usr/bin/env python
"""Render the paper's sweep figures as terminal charts.

Regenerates three of the paper's figures at a small scale and draws them
as ASCII charts right in the terminal -- handy for eyeballing the shapes
(the sigmoid of Figure 5, the staleness knee of Figure 6, the log-log
growth of Figure 1) without a plotting stack.

Run:  python examples/ascii_figures.py
"""

from __future__ import annotations

from repro.experiments import figure1, figure5, figure6
from repro.sim.config import default_config


def main() -> None:
    config = default_config().with_scale(0.001)

    print("Figure 1: testbed access time vs object size (log x)")
    print("=" * 64)
    result = figure1.run(config)
    print(result.render_chart())
    print()

    print("Figure 5: hit rate vs hint-cache size (log x)")
    print("=" * 64)
    result = figure5.run(config)
    print(result.render_chart())
    print()

    print("Figure 6: hit rate vs hint propagation delay (log x)")
    print("=" * 64)
    result = figure6.run(config)
    print(result.render_chart())
    print()
    print(
        "Shapes to look for: Figure 1's hierarchical curve (o) sits above\n"
        "direct access (x) everywhere; Figure 5 rises to a knee at the\n"
        "full-index size; Figure 6 stays flat for minutes of delay and\n"
        "only then erodes."
    )


if __name__ == "__main__":
    main()
