#!/usr/bin/env python
"""Quickstart: reproduce the paper's headline result in ~30 seconds.

Builds a scaled-down version of the paper's evaluation system (a 64-proxy,
three-level topology), generates a DEC-profile synthetic trace, and runs
the three architectures of Figure 8 under the testbed access times:

* the traditional three-level data hierarchy,
* a CRISP-style centralized directory,
* the paper's hint architecture.

Expected output: the hint architecture wins by roughly 2x on mean response
time without improving the hit rate -- the paper's central claim that the
gains come from hit/miss *times*, not hit *rates*.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    DEC,
    CentralizedDirectoryArchitecture,
    DataHierarchy,
    HierarchyTopology,
    HintHierarchy,
    TestbedCostModel,
    generate_trace,
    run_simulation,
)
from repro.reporting.tables import format_table


def main() -> None:
    print("Generating a scaled DEC-profile trace...")
    trace = generate_trace(DEC.scaled(0.002, min_clients=256), seed=42)
    print(
        f"  {len(trace):,} requests, {trace.distinct_objects():,} distinct "
        f"objects, {trace.distinct_clients()} clients\n"
    )

    topology = HierarchyTopology(clients_per_l1=4, l1_per_l2=8, n_l2=8)
    cost = TestbedCostModel()

    rows = []
    baseline_ms = None
    for architecture in (
        DataHierarchy(topology, cost),
        CentralizedDirectoryArchitecture(topology, cost),
        HintHierarchy(topology, cost),
    ):
        print(f"Simulating {architecture.describe()}...")
        metrics = run_simulation(trace, architecture)
        if baseline_ms is None:
            baseline_ms = metrics.mean_response_ms
        rows.append(
            {
                "architecture": architecture.name,
                "mean_response_ms": metrics.mean_response_ms,
                "hit_ratio": metrics.hit_ratio,
                "speedup_vs_hierarchy": baseline_ms / metrics.mean_response_ms,
            }
        )

    print()
    print(format_table(rows, title="Figure 8 (scaled): DEC trace, testbed times"))
    print(
        "\nNote how the hit ratios barely differ: the speedup comes from\n"
        "cheaper paths to the same hits and misses (fewer hops), exactly\n"
        "as the paper argues."
    )


if __name__ == "__main__":
    main()
