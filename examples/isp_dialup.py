#!/usr/bin/env python
"""ISP scenario: dial-up users behind a cooperative cache system.

Models a Prodigy-like ISP (the paper's third trace): a large dial-up
population with *dynamic* client-to-IP binding, short sessions, and a
high distinct-URL ratio.  Two questions a deployment engineer would ask:

1. How much does the hint architecture help my users, and does it still
   help when the Internet is congested?  (Figure 8 across the Rousskov
   min/max bounds.)
2. Should hint caches live at the clients (Figure 4b) given that my
   client boxes can only hold a small hint store?  (Section 3.3's
   trade-off, swept over the client hint cache's false-negative rate.)

Run:  python examples/isp_dialup.py
"""

from __future__ import annotations

from repro import (
    PRODIGY,
    ClientHintHierarchy,
    DataHierarchy,
    HierarchyTopology,
    HintHierarchy,
    RousskovCostModel,
    TestbedCostModel,
    generate_trace,
    run_simulation,
)
from repro.reporting.tables import format_table


def congestion_study(trace, topology) -> None:
    rows = []
    for label, cost in (
        ("quiet network (min)", RousskovCostModel("min")),
        ("congested network (max)", RousskovCostModel("max")),
        ("testbed", TestbedCostModel()),
    ):
        base = run_simulation(trace, DataHierarchy(topology, cost))
        ours = run_simulation(trace, HintHierarchy(topology, cost))
        rows.append(
            {
                "conditions": label,
                "hierarchy_ms": base.mean_response_ms,
                "hints_ms": ours.mean_response_ms,
                "speedup": base.mean_response_ms / ours.mean_response_ms,
            }
        )
    print(format_table(rows, title="Hint architecture under network conditions"))
    print()


def client_hint_study(trace, topology) -> None:
    cost = TestbedCostModel()
    proxy_ms = run_simulation(trace, HintHierarchy(topology, cost)).mean_response_ms
    rows = []
    for fn_rate in (0.0, 0.2, 0.4, 0.6, 0.8):
        arch = ClientHintHierarchy(
            topology, cost, client_false_negative_rate=fn_rate, seed=1
        )
        client_ms = run_simulation(trace, arch).mean_response_ms
        rows.append(
            {
                "client_hint_fn_rate": fn_rate,
                "client_config_ms": client_ms,
                "proxy_config_ms": proxy_ms,
                "winner": "client" if client_ms < proxy_ms else "proxy",
            }
        )
    print(format_table(rows, title="Where should the hint caches live?"))
    print(
        "\nClient-side hints win while the small client hint store stays\n"
        "reasonably complete; once its false-negative rate climbs, keep the\n"
        "hints at the shared proxy (section 3.3 of the paper)."
    )


def main() -> None:
    print("Generating a scaled Prodigy-profile trace (dynamic client ids)...")
    trace = generate_trace(PRODIGY.scaled(0.004, min_clients=256), seed=7)
    print(f"  {len(trace):,} requests over {trace.duration / 86400:.0f} days\n")
    topology = HierarchyTopology(clients_per_l1=4, l1_per_l2=8, n_l2=8)
    congestion_study(trace, topology)
    client_hint_study(trace, topology)


if __name__ == "__main__":
    main()
